"""Evaluation of extended path expressions (paper §3.1 and §5).

A path expression describes the set of database paths that satisfy its
ground instances.  :class:`PathWalker.walk` enumerates, for a given partial
variable binding, every way the path can be satisfied: each yielded
``PathHit`` carries the extended bindings, the tail object, and whether any
hop along the way was set-valued (the "set-shaped" flag used by
object-creating queries, §4.1).

Variables are instantiated lazily while walking — selectors constrain,
unbound selectors bind, method variables range over the methods defined on
the current object, and path variables (``*Y``) range over method sequences
up to a configurable depth.  This realizes the naive semantics of §3.4
without materializing the full substitution space.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

from repro.datamodel.store import ObjectStore
from repro.errors import ArityError, QueryError
from repro.oid import Atom, FuncOid, Oid, Value, Variable, VarSort, term_sort_key
from repro.xsql import ast

__all__ = ["Bindings", "PathHit", "PathWalker", "resolve_term"]

#: Bindings map variables to oids — except path variables, which bind to
#: tuples of method atoms.
Bindings = Dict[Variable, object]


@dataclass(frozen=True)
class PathHit:
    """One satisfying database path: bindings, tail object, shape flag."""

    env: Tuple[Tuple[Variable, object], ...]
    tail: Oid
    set_shaped: bool

    def bindings(self) -> Bindings:
        return dict(self.env)


def _freeze(env: Bindings) -> Tuple[Tuple[Variable, object], ...]:
    return tuple(sorted(env.items(), key=lambda kv: (kv[0].name, kv[0].sort.value)))


def resolve_term(node: object, env: Bindings) -> object:
    """Resolve a selector node under *env*: Oid, App, or unbound Variable."""
    if isinstance(node, Variable):
        return env.get(node, node)
    if isinstance(node, ast.App):
        args = tuple(resolve_term(a, env) for a in node.args)
        if all(isinstance(a, Oid) for a in args):
            return FuncOid(node.functor, args)  # type: ignore[arg-type]
        return ast.App(node.functor, args)
    return node


class PathWalker:
    """Enumerates the database paths satisfying a path expression."""

    def __init__(
        self,
        store: ObjectStore,
        max_path_var_length: int = 6,
        id_function_instances=None,
        restrictions: Optional[Dict[Variable, FrozenSet[Oid]]] = None,
        metrics=None,
        value_cache_size: int = 4096,
    ) -> None:
        self._store = store
        self._max_seq = max_path_var_length
        # functor -> iterable of ground argument tuples; lets an App head
        # with unbound arguments enumerate the view objects that exist
        # (wired up by the session's view manager).
        self._id_instances = id_function_instances or (lambda functor: ())
        # The Theorem 6.1 optimization: per-variable oid restrictions.
        # "it suffices to consider only those instantiations o of X such
        # that o ∈ A(X)" — enumeration and selector-binding both prune.
        self._restrictions = restrictions or {}
        # Optional SessionMetrics: counts index probes vs universe scans.
        self._metrics = metrics
        # Path-traversal memo: (path shape, bindings of the path's free
        # variables) -> (tails, set-shaped).  LRU-capped; stamped with the
        # store's (schema, statistics) generation pair so any DDL or data
        # write since the last lookup drops every memoized traversal.
        self._value_cache: "OrderedDict[Tuple, Tuple[FrozenSet[Oid], bool]]" = (
            OrderedDict()
        )
        self._value_cache_cap = max(0, value_cache_size)
        # Cross-run operator memo for columnar execution: ("cond"|
        # "operand", frozen AST node, projection-value tuple) -> the
        # binding deltas / value set the conjunct or operand produced.
        # AST nodes are frozen dataclasses, so structurally equal
        # conjuncts share entries.  Same generation stamping as the
        # value cache: any schema or data write drops every entry.
        self._memo_cache: "OrderedDict[Tuple, object]" = OrderedDict()
        self._memo_cache_cap = 65536
        # Interning table for memo-key prefixes: hashing a frozen AST
        # node walks it recursively, so operators exchange their
        # ("cond"|"operand", node) prefix for a small int once per run
        # and memo keys hash int-fast afterwards.
        self._memo_tokens: Dict[Tuple, int] = {}
        # Generation-stamped sorted universes / candidate lists / extents —
        # rebuilding these per binding is the old per-tuple hot spot.
        self._universe_cache: Dict[VarSort, List[Oid]] = {}
        self._candidate_cache: Dict[Variable, List[Oid]] = {}
        self._extent_cache: Dict[Oid, List[Oid]] = {}
        # Pure AST fact, never invalidated: path -> its free variables.
        self._path_vars: Dict[ast.PathExpr, Tuple[Variable, ...]] = {}
        self._cache_stamp = None  # Optional[Version]

    # ------------------------------------------------------------------
    # generation-stamped caches
    # ------------------------------------------------------------------

    def _fresh_caches(self) -> None:
        """Drop every data-derived cache if the store has moved on.

        The caches are stamped with the store's full
        :class:`~repro.datamodel.versions.Version`: the schema component
        moves on DDL (new classes, signatures, indexes), the data
        component on every statistics-visible write, and the ticket on
        *every* mutation — including ones the component counters cannot
        see, such as relation tuple inserts — so a mid-query UPDATE
        invalidates memoized traversals before the next lookup.
        """
        stamp = self._store.version
        if stamp == self._cache_stamp:
            return
        if self._cache_stamp is not None:
            if self._metrics is not None:
                self._metrics.count("cache.path.invalidated")
            self._value_cache.clear()
            self._memo_cache.clear()
            self._memo_tokens.clear()
            self._universe_cache.clear()
            self._candidate_cache.clear()
            self._extent_cache.clear()
        self._cache_stamp = stamp

    def memo_token(self, tag: str, node: object) -> int:
        """Intern a memo-key prefix: one AST hash per run, ints after.

        Tokens share the memo's generation stamping: a schema or data
        write clears the table together with the entries keyed on it, so
        a recycled token can never resurrect a stale entry.
        """
        self._fresh_caches()
        key = (tag, node)
        token = self._memo_tokens.get(key)
        if token is None:
            token = len(self._memo_tokens)
            self._memo_tokens[key] = token
        return token

    def memo_get(self, key: Tuple) -> Optional[object]:
        """Cross-run operator memo lookup (columnar execution).

        Returns ``None`` on a miss — callers never store ``None`` (the
        smallest stored value is an empty tuple or frozenset).
        """
        self._fresh_caches()
        cached = self._memo_cache.get(key)
        if cached is None:
            if self._metrics is not None:
                self._metrics.count("cache.memo.miss")
            return None
        self._memo_cache.move_to_end(key)
        if self._metrics is not None:
            self._metrics.count("cache.memo.hit")
        return cached

    def memo_get_fresh(self, key: Tuple) -> Optional[object]:
        """:meth:`memo_get` minus the per-call generation check and
        metrics — for tight loops that called :meth:`memo_token` (or any
        guarded method) this statement and cannot mutate the store
        mid-loop (pipeline conjuncts are side-effect-free).  Callers
        report hit/miss counts in aggregate via ``metrics.count(by=)``.
        """
        cached = self._memo_cache.get(key)
        if cached is None:
            return None
        self._memo_cache.move_to_end(key)
        return cached

    def memo_counts(self, hits: int, misses: int) -> None:
        """Aggregate metrics for a batch of :meth:`memo_get_fresh` calls."""
        if self._metrics is not None:
            if hits:
                self._metrics.count("cache.memo.hit", hits)
            if misses:
                self._metrics.count("cache.memo.miss", misses)

    def memo_put(self, key: Tuple, value: object) -> None:
        """Store one operator-memo entry, LRU-evicting past the cap."""
        self._fresh_caches()
        self._memo_cache[key] = value
        if len(self._memo_cache) > self._memo_cache_cap:
            self._memo_cache.popitem(last=False)
            if self._metrics is not None:
                self._metrics.count("cache.memo.evict")

    def _free_vars(self, path: ast.PathExpr) -> Tuple[Variable, ...]:
        cached = self._path_vars.get(path)
        if cached is None:
            cached = tuple(dict.fromkeys(ast.path_variables(path)))
            self._path_vars[path] = cached
        return cached

    # ------------------------------------------------------------------
    # universes
    # ------------------------------------------------------------------

    def universe(self, sort: VarSort) -> List[Oid]:
        self._fresh_caches()
        cached = self._universe_cache.get(sort)
        if cached is None:
            if sort == VarSort.CLASS:
                items = self._store.class_universe()
            elif sort == VarSort.METHOD:
                items = self._store.method_universe()
            else:
                items = self._store.individual_universe()
            cached = sorted(items, key=term_sort_key)
            self._universe_cache[sort] = cached
        return cached

    def variable_candidates(self, var: Variable) -> List[Oid]:
        """The instantiation candidates of *var*, range-restricted if known."""
        allowed = self._restrictions.get(var)
        if allowed is None:
            return self.universe(var.sort)
        self._fresh_caches()
        cached = self._candidate_cache.get(var)
        if cached is None:
            cached = sorted(allowed, key=term_sort_key)
            self._candidate_cache[var] = cached
        return cached

    def extent_sorted(self, cls: Oid) -> List[Oid]:
        """The sorted extent of *cls*, memoized per generation stamp."""
        self._fresh_caches()
        cached = self._extent_cache.get(cls)
        if cached is None:
            cached = sorted(self._store.extent(cls), key=term_sort_key)
            self._extent_cache[cls] = cached
        return cached

    def admits(self, var: Variable, value: Oid) -> bool:
        """May *var* be bound to *value* under the active restrictions?"""
        allowed = self._restrictions.get(var)
        return allowed is None or value in allowed

    def restriction_for(self, var: Variable) -> Optional[FrozenSet[Oid]]:
        """The active instantiation restriction of *var*, if any."""
        return self._restrictions.get(var)

    # ------------------------------------------------------------------
    # selector candidates
    # ------------------------------------------------------------------

    def _head_candidates(
        self, head: object, env: Bindings
    ) -> Iterator[Tuple[Bindings, Oid]]:
        resolved = resolve_term(head, env)
        if isinstance(resolved, tuple):
            # A bound path variable (a method-atom sequence) projected as
            # a value: reify it as an id-term so it can live in results.
            yield env, FuncOid("attrpath", resolved)
            return
        if isinstance(resolved, Oid):
            yield env, resolved
            return
        if isinstance(resolved, Variable):
            for candidate in self.variable_candidates(resolved):
                new_env = dict(env)
                new_env[resolved] = candidate
                yield new_env, candidate
            return
        if isinstance(resolved, ast.App):
            # Enumerate materialized instantiations of the id-function and
            # unify the unbound argument variables against them.
            for arg_tuple in self._id_instances(resolved.functor):
                new_env = dict(env)
                if self._unify_args(resolved.args, arg_tuple, new_env):
                    yield new_env, FuncOid(resolved.functor, tuple(arg_tuple))
            return
        raise QueryError(f"cannot resolve head selector {head!r}")

    @staticmethod
    def _unify_args(
        patterns: Tuple[object, ...],
        values: Tuple[Oid, ...],
        env: Bindings,
    ) -> bool:
        if len(patterns) != len(values):
            return False
        for pattern, value in zip(patterns, values):
            if isinstance(pattern, Oid):
                if pattern != value:
                    return False
            elif isinstance(pattern, Variable):
                bound = env.get(pattern)
                if bound is None:
                    env[pattern] = value
                elif bound != value:
                    return False
            else:
                return False
        return True

    def _check_selector(
        self,
        selector: Optional[object],
        value: Oid,
        env: Bindings,
    ) -> Optional[Bindings]:
        """Match *value* against the step selector; None means mismatch."""
        if selector is None:
            return env
        resolved = resolve_term(selector, env)
        if isinstance(resolved, Oid):
            return env if resolved == value else None
        if isinstance(resolved, Variable):
            if not self.admits(resolved, value):
                return None
            new_env = dict(env)
            new_env[resolved] = value
            return new_env
        return None  # an App with unbound arguments cannot match here

    # ------------------------------------------------------------------
    # argument candidates
    # ------------------------------------------------------------------

    def _arg_candidates(
        self, args: Tuple[object, ...], env: Bindings
    ) -> Iterator[Tuple[Bindings, Tuple[Oid, ...]]]:
        """All ways to ground the method arguments under *env*."""

        def recurse(
            index: int, current: Bindings, acc: Tuple[Oid, ...]
        ) -> Iterator[Tuple[Bindings, Tuple[Oid, ...]]]:
            if index == len(args):
                yield current, acc
                return
            resolved = resolve_term(args[index], current)
            if isinstance(resolved, Oid):
                yield from recurse(index + 1, current, acc + (resolved,))
            elif isinstance(resolved, Variable):
                for candidate in self.variable_candidates(resolved):
                    new_env = dict(current)
                    new_env[resolved] = candidate
                    yield from recurse(index + 1, new_env, acc + (candidate,))
            else:
                raise QueryError(
                    f"method argument {args[index]!r} cannot be resolved"
                )

        yield from recurse(0, env, ())

    # ------------------------------------------------------------------
    # step evaluation
    # ------------------------------------------------------------------

    def _invoke(
        self, obj: Oid, method: Atom, args: Tuple[Oid, ...]
    ) -> Tuple[FrozenSet[Oid], bool]:
        try:
            return self._store.invoke_kinded(obj, method, args)
        except ArityError:
            return frozenset(), False

    def _method_candidates(
        self, obj: Oid, method: Union[Atom, Variable], env: Bindings
    ) -> Iterator[Tuple[Bindings, Atom]]:
        if isinstance(method, Atom):
            yield env, method
            return
        bound = env.get(method)
        if bound is not None:
            if isinstance(bound, Atom):
                yield env, bound
            return
        for candidate in sorted(
            self._store.methods_defined_on(obj), key=term_sort_key
        ):
            new_env = dict(env)
            new_env[method] = candidate
            yield new_env, candidate

    def _walk_step(
        self, obj: Oid, step: ast.Step, env: Bindings, shaped: bool
    ) -> Iterator[Tuple[Bindings, Oid, bool]]:
        method = step.method_expr.method
        if isinstance(method, Variable) and method.sort == VarSort.PATH:
            yield from self._walk_path_variable(obj, step, env, shaped)
            return
        for env1, method_atom in self._method_candidates(obj, method, env):
            for env2, arg_tuple in self._arg_candidates(
                step.method_expr.args, env1
            ):
                values, set_valued = self._invoke(obj, method_atom, arg_tuple)
                for value in sorted(values, key=term_sort_key):
                    env3 = self._check_selector(step.selector, value, env2)
                    if env3 is not None:
                        yield env3, value, shaped or set_valued

    def _walk_path_variable(
        self, obj: Oid, step: ast.Step, env: Bindings, shaped: bool
    ) -> Iterator[Tuple[Bindings, Oid, bool]]:
        """Expand a ``*Y`` step into method sequences of length 0..max.

        "xY can be bound to any sequence of attributes" (§3.1) — we bind
        the variable to the tuple of method atoms actually traversed.
        """
        var = step.method_expr.method
        assert isinstance(var, Variable)
        bound = env.get(var)
        sequences: Iterator[Tuple[Bindings, Oid, Tuple[Atom, ...], bool]]
        if bound is not None:
            sequences = self._replay_sequence(obj, tuple(bound), env, shaped)
        else:
            sequences = self._explore_sequences(obj, env, shaped)
        for seq_env, tail, sequence, seq_shaped in sequences:
            final_env = dict(seq_env)
            final_env[var] = sequence
            checked = self._check_selector(step.selector, tail, final_env)
            if checked is not None:
                yield checked, tail, seq_shaped

    def _replay_sequence(
        self,
        obj: Oid,
        sequence: Tuple[Atom, ...],
        env: Bindings,
        shaped: bool,
    ) -> Iterator[Tuple[Bindings, Oid, Tuple[Atom, ...], bool]]:
        frontier = [(obj, shaped)]
        for method in sequence:
            next_frontier = []
            for node, flag in frontier:
                values, set_valued = self._invoke(node, method, ())
                next_frontier.extend(
                    (v, flag or set_valued)
                    for v in sorted(values, key=term_sort_key)
                )
            frontier = next_frontier
        for node, flag in frontier:
            yield env, node, sequence, flag

    def _explore_sequences(
        self, obj: Oid, env: Bindings, shaped: bool
    ) -> Iterator[Tuple[Bindings, Oid, Tuple[Atom, ...], bool]]:
        stack: List[Tuple[Oid, Tuple[Atom, ...], bool]] = [(obj, (), shaped)]
        while stack:
            node, sequence, flag = stack.pop()
            yield env, node, sequence, flag
            if len(sequence) >= self._max_seq:
                continue
            for method in sorted(
                self._store.methods_defined_on(node), key=term_sort_key
            ):
                values, set_valued = self._invoke(node, method, ())
                for value in sorted(values, key=term_sort_key):
                    stack.append(
                        (value, sequence + (method,), flag or set_valued)
                    )

    # ------------------------------------------------------------------
    # public walk
    # ------------------------------------------------------------------

    def _indexed_head_candidates(
        self, path: ast.PathExpr, env: Bindings
    ) -> Optional[Iterator[Tuple[Bindings, Oid]]]:
        """Reverse-lookup fast path for an unbound head ([BERT89]).

        Applicable when the head is an unbound variable and the first
        step has a ground method, ground arguments, and a ground selector
        value — then ``X.M[v]`` resolves to the indexed owners of ``v``
        instead of enumerating the whole universe.  Returns ``None`` when
        the index cannot answer exactly (no index, or inherited/computed
        sources exist for the method).
        """
        head = resolve_term(path.head, env)
        if (
            not isinstance(head, Variable)
            or head.sort != VarSort.INDIVIDUAL
            or not path.steps
        ):
            return None
        step = path.steps[0]
        method = step.method_expr.method
        if not isinstance(method, Atom) or step.selector is None:
            return None
        selector = resolve_term(step.selector, env)
        if not isinstance(selector, Oid):
            return None
        args = tuple(
            resolve_term(arg, env) for arg in step.method_expr.args
        )
        if not all(isinstance(a, Oid) for a in args):
            return None
        owners = self._store.lookup_by_value(method, selector, args)
        if owners is None:
            return None

        def generate() -> Iterator[Tuple[Bindings, Oid]]:
            for owner in sorted(owners, key=term_sort_key):
                if self._store.catalogue.is_class(owner):
                    continue  # individual variables skip class-objects
                if not self.admits(head, owner):
                    continue
                yield {**env, head: owner}, owner

        return generate()

    def walk(
        self, path: ast.PathExpr, env: Optional[Bindings] = None
    ) -> Iterator[PathHit]:
        """Yield every satisfying database path as a :class:`PathHit`."""
        env = env or {}
        head_candidates = self._indexed_head_candidates(path, env)
        if head_candidates is None:
            if self._metrics is not None and isinstance(
                resolve_term(path.head, env), Variable
            ):
                self._metrics.count("scan.universe")
            head_candidates = self._head_candidates(path.head, env)
        elif self._metrics is not None:
            self._metrics.count("index.probe")
        for head_env, head in head_candidates:
            frontier: List[Tuple[Bindings, Oid, bool]] = [
                (head_env, head, False)
            ]
            for step in path.steps:
                next_frontier: List[Tuple[Bindings, Oid, bool]] = []
                for step_env, obj, flag in frontier:
                    next_frontier.extend(self._walk_step(obj, step, step_env, flag))
                frontier = next_frontier
                if not frontier:
                    break
            for final_env, tail, flag in frontier:
                yield PathHit(_freeze(final_env), tail, flag)

    def value(
        self, path: ast.PathExpr, env: Optional[Bindings] = None
    ) -> FrozenSet[Oid]:
        """The value of a (ground-under-*env*) path: its set of tails (§3.2).

        Variables still unbound in the path are treated existentially — all
        their instantiations contribute tails, matching the §3.4 semantics
        of evaluating every ground instance.
        """
        return self.value_kinded(path, env)[0]

    def value_kinded(
        self, path: ast.PathExpr, env: Optional[Bindings] = None
    ) -> Tuple[FrozenSet[Oid], bool]:
        """Path value plus whether any satisfying walk was set-shaped.

        Memoized on (path shape, bindings of the path's free variables):
        only the variables the path mentions key the cache, so distinct
        outer environments that agree on those variables share one walk.
        The memo lives behind :meth:`_fresh_caches`, so any schema or data
        generation bump discards it before the next lookup.
        """
        self._fresh_caches()
        env = env or {}
        key = (path,) + tuple(
            (var, env.get(var)) for var in self._free_vars(path)
        )
        cached = self._value_cache.get(key)
        if cached is not None:
            self._value_cache.move_to_end(key)
            if self._metrics is not None:
                self._metrics.count("cache.path.hit")
            return cached
        tails = set()
        shaped = False
        for hit in self.walk(path, env):
            tails.add(hit.tail)
            shaped = shaped or hit.set_shaped
        result = (frozenset(tails), shaped)
        if self._metrics is not None:
            self._metrics.count("cache.path.miss")
        if self._value_cache_cap:
            self._value_cache[key] = result
            if len(self._value_cache) > self._value_cache_cap:
                self._value_cache.popitem(last=False)
                if self._metrics is not None:
                    self._metrics.count("cache.path.evict")
        return result
