"""Abstract syntax of XSQL (paper §3–§5).

The grammar centre-piece is the *extended path expression* (2)/(11):

    selector.MthdEx1[selector1]. ... .MthdExm[selectorm]

where each method expression is ``Name``, a method variable ``"Y``, a path
variable ``*Y``, or ``(Name @ arg, ...)``; selectors are optional and are
id-terms (oids, variables, or id-function applications, §4.2).

All AST nodes are frozen dataclasses: hashable so the type system can key
assignments by syntactic occurrence, and safely shareable between the
evaluators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Tuple, Union

from repro.oid import Atom, Oid, Term, Variable

__all__ = [
    "App",
    "SelectorNode",
    "MethodExpr",
    "Step",
    "PathExpr",
    "Operand",
    "PathOperand",
    "AggOperand",
    "SetLitOperand",
    "SubQueryOperand",
    "SetOpOperand",
    "ArithOperand",
    "Cond",
    "PathCond",
    "Comparison",
    "SchemaCond",
    "NotCond",
    "AndCond",
    "OrCond",
    "UpdateCond",
    "SelectItem",
    "PathItem",
    "SetItem",
    "MethodItem",
    "FromDecl",
    "Query",
    "Statement",
    "CreateView",
    "CreateClass",
    "AlterClass",
    "UpdateClass",
    "QueryOp",
    "path_of_term",
    "free_variables",
]


@dataclass(frozen=True)
class App:
    """A (possibly non-ground) id-term ``f(t1, ..., tn)`` (§4.2).

    Arguments are oids, variables, or nested Apps; the parser may
    temporarily produce path-expression arguments, which normalization
    rewrites away exactly as the paper prescribes for query (10).
    """

    functor: str
    args: Tuple[object, ...]

    def __str__(self) -> str:
        return f"{self.functor}({', '.join(str(a) for a in self.args)})"


SelectorNode = Union[Oid, Variable, App]


@dataclass(frozen=True)
class MethodExpr:
    """A k-ary method expression ``(Mthd @ Arg1, ..., Argk)`` (§5).

    0-ary method expressions are attribute expressions and print without
    the ``@``.  ``method`` is an :class:`Atom`, a method variable, or a
    path variable.
    """

    method: Union[Atom, Variable]
    args: Tuple[object, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return str(self.method)
        inner = ", ".join(str(a) for a in self.args)
        return f"({self.method} @ {inner})"


@dataclass(frozen=True)
class Step:
    """One ``.MthdEx[selector]`` hop of a path expression."""

    method_expr: MethodExpr
    selector: Optional[SelectorNode] = None

    def __str__(self) -> str:
        text = str(self.method_expr)
        if self.selector is not None:
            text += f"[{self.selector}]"
        return text


@dataclass(frozen=True)
class PathExpr:
    """An extended path expression: head selector plus zero or more steps."""

    head: SelectorNode
    steps: Tuple[Step, ...] = ()

    def __str__(self) -> str:
        return ".".join([str(self.head), *(str(s) for s in self.steps)])

    @property
    def is_trivial(self) -> bool:
        """A bare selector is a (trivial) path (§3.1)."""
        return not self.steps

    def last_selector(self) -> Optional[SelectorNode]:
        if self.steps:
            return self.steps[-1].selector
        return None


def path_of_term(term: SelectorNode) -> PathExpr:
    """Wrap a selector as the trivial path it denotes."""
    return PathExpr(head=term)


# ----------------------------------------------------------------------
# operands of comparisons and SELECT-item values
# ----------------------------------------------------------------------


class Operand:
    """Anything whose evaluation yields a set of oids (§3.2)."""

    __slots__ = ()


@dataclass(frozen=True)
class PathOperand(Operand):
    path: PathExpr

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class AggOperand(Operand):
    """``count/sum/avg/min/max`` applied to a path expression (§3.2)."""

    fn: str
    path: PathExpr

    def __str__(self) -> str:
        return f"{self.fn}({self.path})"


@dataclass(frozen=True)
class SetLitOperand(Operand):
    """A set literal such as ``{'blue', 'red'}``."""

    values: Tuple[Oid, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(v) for v in self.values) + "}"


@dataclass(frozen=True)
class SubQueryOperand(Operand):
    """A nested SELECT used as a set of values, as in query (13)."""

    query: "Query"

    def __str__(self) -> str:
        return f"({self.query})"


@dataclass(frozen=True)
class SetOpOperand(Operand):
    """UNION/INTERSECT/MINUS applied to operand values (§3.2)."""

    op: str  # 'union' | 'intersect' | 'minus'
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"({self.left} {self.op.upper()} {self.right})"


@dataclass(frozen=True)
class ArithOperand(Operand):
    """Arithmetic over scalar numeral operands, e.g. ``(1 + W/100) * ...``."""

    op: str  # '+', '-', '*', '/'
    left: Operand
    right: Operand

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


# ----------------------------------------------------------------------
# conditions (the WHERE clause)
# ----------------------------------------------------------------------


class Cond:
    __slots__ = ()


@dataclass(frozen=True)
class PathCond(Cond):
    """A stand-alone path expression: true iff its value is non-empty (§3.4).

    When the head is an :class:`App` whose functor names a declared
    relation, the condition is instead relation membership — relations are
    first-class (§2).
    """

    path: PathExpr

    def __str__(self) -> str:
        return str(self.path)


@dataclass(frozen=True)
class Comparison(Cond):
    """``lhs [some|all] op [some|all] rhs`` (§3.2).

    ``lq``/``rq`` are ``'some'``, ``'all'``, or ``None`` (defaulting to
    existential, which coincides with the plain reading on singletons).
    """

    lhs: Operand
    op: str
    rhs: Operand
    lq: Optional[str] = None
    rq: Optional[str] = None

    def __str__(self) -> str:
        lq = f"{self.lq}" if self.lq else ""
        rq = f"{self.rq}" if self.rq else ""
        return f"{self.lhs} {lq}{self.op}{rq} {self.rhs}"


@dataclass(frozen=True)
class SchemaCond(Cond):
    """``A subclassOf B`` / ``A instanceOf B`` — schema browsing (§3.1).

    ``subclassOf`` is strict: ``Cl subclassOf Cl`` is always false.
    """

    kind: str  # 'subclassOf' | 'instanceOf'
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} {self.kind} {self.right}"


@dataclass(frozen=True)
class NotCond(Cond):
    item: Cond

    def __str__(self) -> str:
        return f"not ({self.item})"


@dataclass(frozen=True)
class AndCond(Cond):
    items: Tuple[Cond, ...]

    def __str__(self) -> str:
        return " and ".join(f"({c})" for c in self.items)


@dataclass(frozen=True)
class OrCond(Cond):
    items: Tuple[Cond, ...]

    def __str__(self) -> str:
        return " or ".join(f"({c})" for c in self.items)


@dataclass(frozen=True)
class UpdateCond(Cond):
    """A nested ``UPDATE CLASS`` clause used as a conjunct (§5).

    "An UPDATE clause evaluates to true if and only if the update was
    successful.  We also assume that the conjuncts in the WHERE clause are
    evaluated in the left-to-right manner."
    """

    update: "UpdateClass"

    def __str__(self) -> str:
        return f"({self.update})"


# ----------------------------------------------------------------------
# SELECT items
# ----------------------------------------------------------------------


class SelectItem:
    __slots__ = ()


@dataclass(frozen=True)
class PathItem(SelectItem):
    """``[Attr =] path`` — scalar or set-shaped projection / attribute."""

    path: PathExpr
    name: Optional[str] = None

    def __str__(self) -> str:
        if self.name:
            return f"{self.name} = {self.path}"
        return str(self.path)


@dataclass(frozen=True)
class SetItem(SelectItem):
    """``Attr = {W}`` — group the bindings of W into a set attribute (§4.1)."""

    var: Variable
    name: str

    def __str__(self) -> str:
        return f"{self.name} = {{{self.var}}}"


@dataclass(frozen=True)
class MethodItem(SelectItem):
    """``(Mthd @ args) = value`` — a query-defined method result (§5)."""

    method: Atom
    args: Tuple[object, ...]
    value: Operand

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"({self.method} @ {inner}) = {self.value}"


@dataclass(frozen=True)
class FromDecl:
    """One ``Class Var`` (or ``#C Var``) binding of the FROM clause."""

    cls: Union[Atom, Variable]
    var: Variable

    def __str__(self) -> str:
        return f"{self.cls} {self.var}"


@dataclass(frozen=True)
class Query:
    """A full SELECT query (§3.4), possibly object-creating (§4.1)."""

    select: Tuple[SelectItem, ...]
    from_: Tuple[FromDecl, ...] = ()
    where: Optional[Cond] = None
    oid_vars: Optional[Tuple[Variable, ...]] = None  # OID FUNCTION OF ...
    oid_scope: Optional[Variable] = None  # OID X (method definitions)

    @property
    def creates_objects(self) -> bool:
        return self.oid_vars is not None

    def __str__(self) -> str:
        parts = ["SELECT " + ", ".join(str(s) for s in self.select)]
        if self.from_:
            parts.append("FROM " + ", ".join(str(f) for f in self.from_))
        if self.oid_vars is not None:
            parts.append(
                "OID FUNCTION OF " + ", ".join(str(v) for v in self.oid_vars)
            )
        if self.oid_scope is not None:
            parts.append(f"OID {self.oid_scope}")
        if self.where is not None:
            parts.append(f"WHERE {self.where}")
        return " ".join(parts)


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------


class Statement:
    __slots__ = ()


@dataclass(frozen=True)
class SignatureDecl:
    """A textual signature ``M : A1, ..., Ak => R`` in DDL clauses."""

    method: str
    args: Tuple[str, ...]
    result: str
    set_valued: bool

    def __str__(self) -> str:
        arrow = "=>>" if self.set_valued else "=>"
        if self.args:
            return f"{self.method} : {', '.join(self.args)} {arrow} {self.result}"
        return f"{self.method} {arrow} {self.result}"


@dataclass(frozen=True)
class CreateView(Statement):
    """``CREATE VIEW V AS SUBCLASS OF C SIGNATURE ... SELECT ...`` (§4.2)."""

    name: str
    superclass: str
    signatures: Tuple[SignatureDecl, ...]
    query: Query

    def __str__(self) -> str:
        sigs = ", ".join(str(s) for s in self.signatures)
        return (
            f"CREATE VIEW {self.name} AS SUBCLASS OF {self.superclass} "
            f"SIGNATURE {sigs} {self.query}"
        )


@dataclass(frozen=True)
class CreateClass(Statement):
    """``CREATE CLASS C [AS SUBCLASS OF C1, ...] [SIGNATURE ...]``.

    Not spelled out in the paper (schemas there pre-exist), but required to
    build schemas in the same language; signatures follow §2 syntax.
    """

    name: str
    superclasses: Tuple[str, ...] = ()
    signatures: Tuple[SignatureDecl, ...] = ()

    def __str__(self) -> str:
        text = f"CREATE CLASS {self.name}"
        if self.superclasses:
            text += " AS SUBCLASS OF " + ", ".join(self.superclasses)
        if self.signatures:
            text += " SIGNATURE " + ", ".join(str(s) for s in self.signatures)
        return text


@dataclass(frozen=True)
class AlterClass(Statement):
    """``ALTER CLASS C ADD SIGNATURE sig SELECT ...`` (§5, query (12))."""

    cls: str
    signature: SignatureDecl
    query: Query

    def __str__(self) -> str:
        return (
            f"ALTER CLASS {self.cls} ADD SIGNATURE {self.signature} "
            f"{self.query}"
        )


@dataclass(frozen=True)
class UpdateClass(Statement):
    """``UPDATE CLASS C SET path = expr [, ...]`` (§5)."""

    cls: str
    assignments: Tuple[Tuple[PathExpr, Operand], ...]

    def __str__(self) -> str:
        sets = ", ".join(f"{p} = {e}" for p, e in self.assignments)
        return f"UPDATE CLASS {self.cls} SET {sets}"


@dataclass(frozen=True)
class CreateRelation(Statement):
    """``CREATE RELATION R (c1, ..., cn)`` — a first-class relation (§2).

    The paper argues for "having relations as first-class language
    constructs" partly for "upward compatibility with the standard,
    relational SQL"; this and :class:`InsertInto` provide the DDL/DML for
    them.
    """

    name: str
    columns: Tuple[str, ...]

    def __str__(self) -> str:
        return f"CREATE RELATION {self.name} ({', '.join(self.columns)})"


@dataclass(frozen=True)
class InsertInto(Statement):
    """``INSERT INTO R query`` or ``INSERT INTO R VALUES (...), ...``."""

    name: str
    query: Optional["Query"] = None
    rows: Tuple[Tuple[Oid, ...], ...] = ()

    def __str__(self) -> str:
        if self.query is not None:
            return f"INSERT INTO {self.name} {self.query}"
        rendered = ", ".join(
            "(" + ", ".join(str(v) for v in row) + ")" for row in self.rows
        )
        return f"INSERT INTO {self.name} VALUES {rendered}"


@dataclass(frozen=True)
class QueryOp(Statement):
    """``query UNION|MINUS|INTERSECT query`` over result relations (§3.3)."""

    op: str
    left: Union[Query, "QueryOp"]
    right: Union[Query, "QueryOp"]

    def __str__(self) -> str:
        # No parentheses: the grammar associates UNION/MINUS/INTERSECT
        # left-to-right, so the flat rendering re-parses to the same tree.
        return f"{self.left} {self.op.upper()} {self.right}"


# ----------------------------------------------------------------------
# free-variable analysis
# ----------------------------------------------------------------------


def _selector_vars(node: object) -> Iterator[Variable]:
    if isinstance(node, Variable):
        yield node
    elif isinstance(node, App):
        for arg in node.args:
            yield from _selector_vars(arg)
    elif isinstance(node, PathExpr):
        yield from path_variables(node)


def path_variables(path: PathExpr) -> Iterator[Variable]:
    """All variables of a path expression, head to tail, with repeats."""
    yield from _selector_vars(path.head)
    for step in path.steps:
        if isinstance(step.method_expr.method, Variable):
            yield step.method_expr.method
        for arg in step.method_expr.args:
            yield from _selector_vars(arg)
        if step.selector is not None:
            yield from _selector_vars(step.selector)


def operand_variables(operand: Operand) -> Iterator[Variable]:
    if isinstance(operand, PathOperand):
        yield from path_variables(operand.path)
    elif isinstance(operand, AggOperand):
        yield from path_variables(operand.path)
    elif isinstance(operand, (SetOpOperand, ArithOperand)):
        yield from operand_variables(operand.left)
        yield from operand_variables(operand.right)
    elif isinstance(operand, SubQueryOperand):
        yield from free_variables(operand.query)
    # SetLitOperand has no variables (literals only)


def cond_variables(cond: Cond) -> Iterator[Variable]:
    if isinstance(cond, PathCond):
        yield from path_variables(cond.path)
    elif isinstance(cond, Comparison):
        yield from operand_variables(cond.lhs)
        yield from operand_variables(cond.rhs)
    elif isinstance(cond, SchemaCond):
        yield from _selector_vars(cond.left)
        yield from _selector_vars(cond.right)
    elif isinstance(cond, NotCond):
        yield from cond_variables(cond.item)
    elif isinstance(cond, (AndCond, OrCond)):
        for item in cond.items:
            yield from cond_variables(item)
    elif isinstance(cond, UpdateCond):
        for path, expr in cond.update.assignments:
            yield from path_variables(path)
            yield from operand_variables(expr)


def free_variables(query: Query) -> Iterator[Variable]:
    """All variables mentioned anywhere in *query* (with repeats)."""
    for item in query.select:
        if isinstance(item, PathItem):
            yield from path_variables(item.path)
        elif isinstance(item, SetItem):
            yield item.var
        elif isinstance(item, MethodItem):
            for arg in item.args:
                yield from _selector_vars(arg)
            yield from operand_variables(item.value)
    for decl in query.from_:
        if isinstance(decl.cls, Variable):
            yield decl.cls
        yield decl.var
    if query.oid_vars:
        yield from query.oid_vars
    if query.oid_scope is not None:
        yield query.oid_scope
    if query.where is not None:
        yield from cond_variables(query.where)
