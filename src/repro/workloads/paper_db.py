"""The instance database behind the paper's worked examples.

The paper never prints its instance data, only query answers; this module
reconstructs a database on the Figure 1 schema for which every numbered
example evaluates to the answer the text states (or illustrates).  The cast:

* ``mary123`` — the Person of path expression (1); lives in New York.
* ``uniSQL`` — the Company of example (2); its president ``kim`` (age 29)
  owns a blue and a red automobile (query (8)) and has family members Lee
  and Sue (their names answer example (2)).
* ``john13`` — ``_john13`` of §3.2, with a 22-year-old family member.
* ``ben`` — the >4-family-members, same-residence, under-$35k employee of
  the aggregate query in §3.2.
* ``acme`` — the company that pays *all* its division managers more than
  $200,000 (query (13)); it also employs ``acmeEmp`` whose name equals the
  company name (explicit join (6)).
* TurboEngine/DieselEngine instances reached from employee-owned
  automobiles (the §3.1 unnesting query).
* Retirees and dependents for the Beneficiaries grouping query (8)/§4.1.
"""

from __future__ import annotations

from repro.datamodel.store import ObjectStore
from repro.oid import Atom
from repro.schema.figure1 import build_figure1_schema

__all__ = ["populate_paper_database", "paper_session"]


def populate_paper_database(store: ObjectStore) -> ObjectStore:
    """Populate *store* (already carrying the Figure 1 schema)."""
    A = Atom

    # -- addresses -------------------------------------------------------
    addr_ny1 = store.create_object(A("addr_ny1"), ["Address"])
    store.set_attr(addr_ny1, "Street", "5th Avenue")
    store.set_attr(addr_ny1, "City", "newyork")
    store.set_attr(addr_ny1, "State", "NY")
    store.set_attr(addr_ny1, "Phone", 2125550100)

    addr_ny2 = store.create_object(A("addr_ny2"), ["Address"])
    store.set_attr(addr_ny2, "Street", "Broadway 12")
    store.set_attr(addr_ny2, "City", "newyork")
    store.set_attr(addr_ny2, "State", "NY")

    addr_austin = store.create_object(A("addr_austin"), ["Address"])
    store.set_attr(addr_austin, "Street", "Research Blvd 9390")
    store.set_attr(addr_austin, "City", "austin")
    store.set_attr(addr_austin, "State", "TX")

    addr_sf = store.create_object(A("addr_sf"), ["Address"])
    store.set_attr(addr_sf, "City", "sanfrancisco")
    store.set_attr(addr_sf, "State", "CA")

    # -- engines / drivetrains / bodies -----------------------------------
    eng_turbo = store.create_object(A("eng_turbo"), ["TurboEngine"])
    store.set_attr(eng_turbo, "HPpower", 300)
    store.set_attr(eng_turbo, "CCsize", 2000)
    store.set_attr(eng_turbo, "CylinderN", 6)

    eng_diesel = store.create_object(A("eng_diesel"), ["DieselEngine"])
    store.set_attr(eng_diesel, "HPpower", 150)
    store.set_attr(eng_diesel, "CCsize", 2200)
    store.set_attr(eng_diesel, "CylinderN", 4)

    eng_four = store.create_object(A("eng_four"), ["FourStrokeEngine"])
    store.set_attr(eng_four, "HPpower", 120)
    store.set_attr(eng_four, "CCsize", 1600)
    store.set_attr(eng_four, "CylinderN", 4)

    eng_two = store.create_object(A("eng_two"), ["TwoStrokeEngine"])
    store.set_attr(eng_two, "HPpower", 25)
    store.set_attr(eng_two, "CCsize", 250)
    store.set_attr(eng_two, "CylinderN", 1)

    def drivetrain(name: str, engine, transmission: str):
        dt = store.create_object(A(name), ["VehicleDrivetrain"])
        store.set_attr(dt, "Engine", engine)
        store.set_attr(dt, "Transmission", transmission)
        return dt

    dt1 = drivetrain("dt1", eng_turbo, "manual")
    dt2 = drivetrain("dt2", eng_diesel, "automatic")
    dt3 = drivetrain("dt3", eng_four, "manual")
    dt4 = drivetrain("dt4", eng_two, "chain")

    body1 = store.create_object(A("body1"), ["AutoBody"])
    store.set_attr(body1, "Chassis", "steel")
    store.set_attr(body1, "Interior", "leather")
    store.set_attr(body1, "Doors", 4)

    # -- people -----------------------------------------------------------
    def person(name: str, display: str, age: int, residence):
        obj = store.create_object(A(name), ["Person"])
        store.set_attr(obj, "Name", display)
        store.set_attr(obj, "Age", age)
        store.set_attr(obj, "Residence", residence)
        return obj

    def employee(name: str, display: str, age: int, residence, salary: int):
        obj = store.create_object(A(name), ["Employee"])
        store.set_attr(obj, "Name", display)
        store.set_attr(obj, "Age", age)
        store.set_attr(obj, "Residence", residence)
        store.set_attr(obj, "Salary", salary)
        return obj

    mary = person("mary123", "Mary", 35, addr_ny1)

    lee = person("lee", "Lee", 25, addr_austin)
    sue = person("sue", "Sue", 8, addr_austin)
    anna = person("anna", "Anna", 22, addr_austin)
    bob = person("bob", "Bob", 15, addr_austin)

    john = employee("john13", "John", 50, addr_austin, 30000)
    store.set_attr_set(john, "FamMembers", [anna, bob])
    store.set_attr_set(john, "Dependents", [bob])
    store.set_attr_set(john, "Qualifications", ["engineer"])

    kim = employee("kim", "Kim", 29, addr_austin, 120000)
    store.set_attr_set(kim, "FamMembers", [lee, sue])
    store.set_attr_set(kim, "Qualifications", ["engineer", "manager"])

    # ben's whole family lives at addr_ny2 and has 5 members whose ages
    # are all below every age in john's family (the all<all example).
    ben = employee("ben", "Ben", 40, addr_ny2, 30000)
    family = []
    for index, age in enumerate((2, 4, 6, 8, 9), start=1):
        member = person(f"benfam{index}", f"BenFam{index}", age, addr_ny2)
        family.append(member)
    store.set_attr_set(ben, "FamMembers", family)
    store.set_attr_set(ben, "Dependents", [family[0]])

    rich = employee("rich", "Rich", 45, addr_austin, 90000)
    pat = employee("pat", "Pat", 52, addr_sf, 250000)
    maria = employee("maria", "Maria", 48, addr_sf, 300000)
    acme_emp = employee("acmeEmp", "Acme", 33, addr_sf, 20000)
    retiree = employee("ret1", "Reta", 70, addr_austin, 0)
    pres_acme = person("presAcme", "Prescott", 55, addr_sf)

    # -- companies & divisions ---------------------------------------------
    uniSQL = store.create_object(A("uniSQL"), ["Company"])
    store.set_attr(uniSQL, "Name", "UniSQL")
    store.set_attr(uniSQL, "Headquarters", addr_austin)
    store.set_attr(uniSQL, "President", kim)
    store.set_attr_set(uniSQL, "Retirees", [retiree])

    acme = store.create_object(A("acme"), ["Company"])
    store.set_attr(acme, "Name", "Acme")
    store.set_attr(acme, "Headquarters", addr_sf)
    store.set_attr(acme, "President", pres_acme)

    def division(name: str, display: str, fn: str, location, manager, members):
        obj = store.create_object(A(name), ["Division"])
        store.set_attr(obj, "Name", display)
        store.set_attr(obj, "Function", fn)
        store.set_attr(obj, "Location", location)
        store.set_attr(obj, "Manager", manager)
        store.set_attr_set(obj, "Employees", members)
        return obj

    # Footnote 10: an employee works in at most one division per company
    # (the CompSalaries view of §4.2 relies on it), so rich belongs to
    # d_adv only.
    d_eng = division(
        "d_eng", "Engineering", "R&D", addr_austin, john, [john, ben]
    )
    d_adv = division(
        "d_adv", "Advertizing", "ads", addr_austin, rich, [rich]
    )
    store.set_attr_set(uniSQL, "Divisions", [d_eng, d_adv])

    d_sales = division(
        "d_sales", "Sales", "sales", addr_sf, pat, [pat, acme_emp]
    )
    d_mkt = division(
        "d_mkt", "Advertizing", "ads", addr_sf, maria, [maria]
    )
    store.set_attr_set(acme, "Divisions", [d_sales, d_mkt])

    # -- vehicles -----------------------------------------------------------
    def automobile(name: str, color: str, manufacturer, dt, body=None):
        obj = store.create_object(A(name), ["Automobile"])
        store.set_attr(obj, "Model", name.upper())
        store.set_attr(obj, "Color", color)
        store.set_attr(obj, "Manufacturer", manufacturer)
        store.set_attr(obj, "Drivetrain", dt)
        if body is not None:
            store.set_attr(obj, "Body", body)
        return obj

    car_blue = automobile("carBlue", "blue", uniSQL, dt1, body1)
    car_red = automobile("carRed", "red", uniSQL, dt2)
    car_white = automobile("carWhite", "white", acme, dt3)

    moto = store.create_object(A("moto1"), ["Motorbike"])
    store.set_attr(moto, "Model", "M250")
    store.set_attr(moto, "Color", "black")
    store.set_attr(moto, "Manufacturer", acme)
    store.set_attr(moto, "Drivetrain", dt4)
    store.set_attr(moto, "Size", 250)

    store.set_attr_set(kim, "OwnedVehicles", [car_blue, car_red])
    store.set_attr_set(pat, "OwnedVehicles", [car_white])
    store.set_attr_set(mary, "OwnedVehicles", [moto])
    return store


def paper_session():
    """A ready-to-query session on the Figure 1 schema + paper instance."""
    from repro.xsql.session import Session

    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session
