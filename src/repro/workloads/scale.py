"""Deterministic million-object populations of the Figure 1 schema.

:mod:`repro.workloads.generator` builds the small, densely connected
databases the correctness suites and paper benchmarks use.  This module
is its scale-out sibling — the ROADMAP's measurement surface for
"production scale": a seeded, parameterized generator that populates the
Figure 1 schema from 10^3 to 10^6+ objects with

* a **configurable class mix** — the object budget is split between
  people, vehicles (each costing vehicle + drivetrain + engine),
  companies (each costing 1 + ``divisions_per_company``), and addresses;
* **Zipf-skewed fan-out** on the reference-valued relations — a few
  companies manufacture most vehicles (``Manufacturer``), a few
  divisions employ most employees (``Division.Employees``, the
  works-for edge), a few vehicles are owned by many people
  (``OwnedVehicles``, the drives edge), and residences cluster on a few
  addresses — so joins and path walks see realistic hot keys instead of
  uniform noise;
* **batched store writes** — set-valued relations are accumulated in
  plain dicts and written with one ``set_attr_set`` per owner, riding
  the store's memoized arrow-kind check, so generation itself runs at
  bulk-load speed (ingest throughput is one of the numbers
  ``benchmarks/bench_scale.py`` tracks).

Everything is reproducible from ``(seed, spec)``: one
:class:`random.Random` drives the whole build, oid names are dense
(``s_p0``, ``s_v17``, ...), and :meth:`ScaleSpec.as_dict` embeds the full
spec in benchmark artifacts so a run is self-describing.  Generated
populations round-trip through :mod:`repro.datamodel.serialize`
bit-identically (``tests/workloads/test_scale.py`` holds them to it).
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Dict, List, Optional, Sequence

from repro.datamodel.store import ObjectStore
from repro.errors import XsqlError
from repro.oid import Atom, Oid
from repro.schema.figure1 import build_figure1_schema

__all__ = ["ScaleSpec", "SCALE_TIERS", "ScaleCounts", "generate_scaled"]

_CITIES = (
    "newyork", "austin", "sanfrancisco", "sandiego",
    "boston", "chicago", "seattle", "portland", "denver", "atlanta",
)
_COLORS = ("blue", "red", "white", "black", "green", "silver")
_ENGINE_CLASSES = (
    "TurboEngine", "DieselEngine", "FourStrokeEngine", "TwoStrokeEngine",
)
_FUNCTIONS = ("ops", "sales", "research", "support")


@dataclass(frozen=True)
class ScaleSpec:
    """Size, mix, and skew of one synthetic Figure 1 population.

    ``n_objects`` is the total object budget — people, vehicles (3
    objects each), companies (1 + ``divisions_per_company`` each), and
    addresses all draw from it, so ``n_objects=10_000`` really means ten
    thousand stored objects, whatever the mix.
    """

    n_objects: int = 1_000
    seed: int = 0
    #: Budget shares per object family (renormalized; people take the
    #: remainder, so they absorb rounding).
    vehicle_share: float = 0.30
    company_share: float = 0.02
    address_share: float = 0.03
    #: Fraction of people that are employees (with Salary, FamMembers).
    employee_fraction: float = 0.6
    divisions_per_company: int = 4
    #: Zipf exponent for the skewed fan-out relations; higher is more
    #: skewed, ``0.0`` is uniform.
    zipf_s: float = 1.2
    max_family: int = 4
    max_owned: int = 3

    def __post_init__(self) -> None:
        if self.n_objects < 20:
            raise XsqlError("ScaleSpec.n_objects must be >= 20")
        shares = (self.vehicle_share, self.company_share, self.address_share)
        if any(s < 0 for s in shares) or sum(shares) >= 1.0:
            raise XsqlError(
                "ScaleSpec shares must be non-negative and sum below 1.0 "
                "(people take the remainder)"
            )
        if not 0.0 <= self.employee_fraction <= 1.0:
            raise XsqlError("employee_fraction must be within [0, 1]")
        if self.divisions_per_company < 1:
            raise XsqlError("divisions_per_company must be >= 1")
        if self.zipf_s < 0:
            raise XsqlError("zipf_s must be >= 0")

    # ------------------------------------------------------------------

    def counts(self) -> "ScaleCounts":
        """The exact object counts this spec resolves to."""
        budget = self.n_objects
        addresses = max(4, round(budget * self.address_share))
        per_company = 1 + self.divisions_per_company
        companies = max(
            2, round(budget * self.company_share / per_company)
        )
        vehicles = max(1, round(budget * self.vehicle_share / 3))
        people = budget - addresses - companies * per_company - vehicles * 3
        if people < 1:
            raise XsqlError(
                f"ScaleSpec mix leaves no room for people at "
                f"n_objects={budget}"
            )
        return ScaleCounts(
            people=people,
            employees=int(people * self.employee_fraction),
            companies=companies,
            divisions=companies * self.divisions_per_company,
            vehicles=vehicles,
            addresses=addresses,
        )

    def as_dict(self) -> Dict[str, object]:
        """The spec as plain data (embedded in benchmark artifacts)."""
        return {
            "n_objects": self.n_objects,
            "seed": self.seed,
            "vehicle_share": self.vehicle_share,
            "company_share": self.company_share,
            "address_share": self.address_share,
            "employee_fraction": self.employee_fraction,
            "divisions_per_company": self.divisions_per_company,
            "zipf_s": self.zipf_s,
            "max_family": self.max_family,
            "max_owned": self.max_owned,
            "counts": self.counts().as_dict(),
        }


@dataclass(frozen=True)
class ScaleCounts:
    """Resolved per-family object counts of a :class:`ScaleSpec`."""

    people: int
    employees: int
    companies: int
    divisions: int
    vehicles: int
    addresses: int

    @property
    def total(self) -> int:
        # Each vehicle mints vehicle + drivetrain + engine.
        return (
            self.people
            + self.companies
            + self.divisions
            + self.vehicles * 3
            + self.addresses
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "people": self.people,
            "employees": self.employees,
            "companies": self.companies,
            "divisions": self.divisions,
            "vehicles": self.vehicles,
            "addresses": self.addresses,
            "total": self.total,
        }


#: Named population tiers the benchmarks and the difftest ``--scale``
#: option use.  ``1m`` only runs behind ``--runslow``.
SCALE_TIERS = {
    "1k": 1_000,
    "10k": 10_000,
    "100k": 100_000,
    "1m": 1_000_000,
}


class _ZipfPicker:
    """Rank-skewed choice over a population: rank 1 is the hot key."""

    def __init__(
        self, population: Sequence[Oid], s: float, rng: random.Random
    ) -> None:
        self.population = population
        self.rng = rng
        weights = [1.0 / ((rank + 1) ** s) for rank in range(len(population))]
        self.cum = list(accumulate(weights))

    def pick(self) -> Oid:
        total = self.cum[-1]
        index = bisect_right(self.cum, self.rng.random() * total)
        return self.population[min(index, len(self.population) - 1)]

    def pick_distinct(self, count: int) -> List[Oid]:
        """Up to *count* distinct skewed picks (bounded retries)."""
        chosen: Dict[Oid, None] = {}
        attempts = 0
        while len(chosen) < count and attempts < 4 * count:
            chosen.setdefault(self.pick())
            attempts += 1
        return list(chosen)


def generate_scaled(
    spec: ScaleSpec, store: Optional[ObjectStore] = None
) -> ObjectStore:
    """Build a Figure 1 population of ``spec.n_objects`` objects.

    Identical specs yield identical stores — same oids, same cells, same
    statistics — which is what makes the scale benchmarks diffable and
    the difftest ``--scale`` runs replayable.
    """
    if store is None:
        store = ObjectStore()
    build_figure1_schema(store)
    rng = random.Random(spec.seed)
    counts = spec.counts()

    addresses: List[Oid] = []
    for index in range(counts.addresses):
        addr = store.create_object(Atom(f"s_a{index}"), ["Address"])
        store.set_attr(addr, "City", _CITIES[index % len(_CITIES)])
        store.set_attr(addr, "Street", f"Street {index}")
        store.set_attr(addr, "State", f"S{index % 50}")
        addresses.append(addr)
    residence_of = _ZipfPicker(addresses, spec.zipf_s, rng)

    # People first (employees form the low prefix of the id space, which
    # makes the works-for and family wiring below cheap and stable).
    people: List[Oid] = []
    employees: List[Oid] = []
    for index in range(counts.people):
        is_employee = index < counts.employees
        cls = "Employee" if is_employee else "Person"
        person = store.create_object(Atom(f"s_p{index}"), [cls])
        store.set_attr(person, "Name", f"P{index}")
        store.set_attr(person, "Age", rng.randint(1, 90))
        store.set_attr(person, "Residence", residence_of.pick())
        people.append(person)
        if is_employee:
            store.set_attr(person, "Salary", rng.randint(15_000, 320_000))
            employees.append(person)

    companies: List[Oid] = []
    divisions: List[Oid] = []
    for cindex in range(counts.companies):
        company = store.create_object(Atom(f"s_c{cindex}"), ["Company"])
        store.set_attr(company, "Name", f"Company{cindex}")
        store.set_attr(company, "Headquarters", residence_of.pick())
        if employees:
            store.set_attr(company, "President", rng.choice(employees))
        owned_divisions: List[Oid] = []
        for dindex in range(spec.divisions_per_company):
            division = store.create_object(
                Atom(f"s_c{cindex}d{dindex}"), ["Division"]
            )
            store.set_attr(division, "Name", f"Div{cindex}_{dindex}")
            store.set_attr(
                division, "Function", _FUNCTIONS[dindex % len(_FUNCTIONS)]
            )
            store.set_attr(division, "Location", residence_of.pick())
            owned_divisions.append(division)
            divisions.append(division)
        store.set_attr_set(company, "Divisions", owned_divisions)
        companies.append(company)

    # works-for: every employee lands in one Zipf-picked division; the
    # per-division member sets are batched into single set writes.
    division_members: Dict[Oid, List[Oid]] = {}
    employer_of = _ZipfPicker(divisions, spec.zipf_s, rng)
    for employee in employees:
        division_members.setdefault(employer_of.pick(), []).append(employee)
    for division, members in division_members.items():
        store.set_attr(division, "Manager", members[0])
        store.set_attr_set(division, "Employees", members)

    # FamMembers/Dependents: small uniform samples (families are local
    # structure, not hot keys).
    for employee in employees:
        family_size = rng.randint(0, spec.max_family)
        if family_size:
            store.set_attr_set(
                employee,
                "FamMembers",
                rng.sample(people, min(family_size, len(people))),
            )
        if rng.random() < 0.3:
            store.set_attr_set(
                employee,
                "Dependents",
                rng.sample(people, min(rng.randint(1, 2), len(people))),
            )

    # Vehicles: Manufacturer is the Zipf-skewed many-to-one edge (a few
    # companies build most vehicles).
    manufacturer_of = _ZipfPicker(companies, spec.zipf_s, rng)
    vehicles: List[Oid] = []
    for vindex in range(counts.vehicles):
        engine = store.create_object(
            Atom(f"s_e{vindex}"),
            [_ENGINE_CLASSES[vindex % len(_ENGINE_CLASSES)]],
        )
        store.set_attr(engine, "HPpower", rng.randint(20, 400))
        store.set_attr(engine, "CCsize", rng.randint(100, 4000))
        store.set_attr(engine, "CylinderN", rng.randint(1, 12))
        drivetrain = store.create_object(
            Atom(f"s_dt{vindex}"), ["VehicleDrivetrain"]
        )
        store.set_attr(drivetrain, "Engine", engine)
        store.set_attr(
            drivetrain, "Transmission", "manual" if vindex % 3 else "auto"
        )
        vehicle = store.create_object(Atom(f"s_v{vindex}"), ["Automobile"])
        store.set_attr(vehicle, "Model", f"Model{vindex % 97}")
        store.set_attr(vehicle, "Color", rng.choice(_COLORS))
        store.set_attr(vehicle, "Drivetrain", drivetrain)
        store.set_attr(vehicle, "Manufacturer", manufacturer_of.pick())
        vehicles.append(vehicle)

    # drives: ownership sets are Zipf-skewed over vehicles (popular
    # models have many owners) and batched one write per person.
    owned_by = _ZipfPicker(vehicles, spec.zipf_s, rng)
    for person in people:
        count = rng.randint(0, spec.max_owned)
        if count:
            owned = owned_by.pick_distinct(count)
            if owned:
                store.set_attr_set(person, "OwnedVehicles", owned)
    return store
