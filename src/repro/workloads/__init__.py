"""Workloads: the paper's instance database and synthetic generators."""

from repro.workloads.paper_db import populate_paper_database, paper_session
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.workloads.scale import SCALE_TIERS, ScaleSpec, generate_scaled

__all__ = [
    "populate_paper_database",
    "paper_session",
    "WorkloadConfig",
    "generate_database",
    "ScaleSpec",
    "SCALE_TIERS",
    "generate_scaled",
]
