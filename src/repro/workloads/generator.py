"""Seeded synthetic workloads over the Figure 1 schema.

The paper reports no performance numbers (its prototype was never
published), so the benchmark harness measures the paper's qualitative
claims on synthetic databases of controlled size.  The generator is fully
deterministic for a given :class:`WorkloadConfig` — identical seeds yield
identical databases — which keeps benches reproducible.

Scaling knobs mirror the schema's natural fan-out: ``n_people`` drives
``n_companies`` divisions/employees assignments, family sizes, and vehicle
ownership, so path expressions of every arity in the paper have non-trivial
instantiation counts at every size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.datamodel.store import ObjectStore
from repro.oid import Atom
from repro.schema.figure1 import build_figure1_schema

__all__ = ["WorkloadConfig", "WORKLOAD_PRESETS", "generate_database"]

_CITIES = (
    "newyork",
    "austin",
    "sanfrancisco",
    "sandiego",
    "boston",
    "chicago",
    "seattle",
)
_COLORS = ("blue", "red", "white", "black", "green", "silver")
_ENGINE_CLASSES = (
    "TurboEngine",
    "DieselEngine",
    "FourStrokeEngine",
    "TwoStrokeEngine",
)


@dataclass(frozen=True)
class WorkloadConfig:
    """Size and shape of a synthetic Figure 1 database."""

    n_people: int = 100
    n_companies: int = 5
    divisions_per_company: int = 3
    employee_fraction: float = 0.6
    max_family: int = 4
    max_vehicles: int = 2
    seed: int = 42

    @property
    def n_employees(self) -> int:
        return int(self.n_people * self.employee_fraction)


#: Named sizes used by benchmarks and the differential fuzzer
#: (:mod:`repro.difftest`).  ``tiny`` is small enough for the naive
#: §3.4 oracle to enumerate full substitution spaces.
WORKLOAD_PRESETS = {
    "tiny": WorkloadConfig(
        n_people=6, n_companies=2, divisions_per_company=2, max_family=2
    ),
    "small": WorkloadConfig(n_people=16, n_companies=3),
    "medium": WorkloadConfig(n_people=40, n_companies=4),
    "large": WorkloadConfig(n_people=120, n_companies=6),
}


def generate_database(
    config: WorkloadConfig, store: ObjectStore = None
) -> ObjectStore:
    """Build a database of the configured size (schema included)."""
    if store is None:
        store = ObjectStore()
    build_figure1_schema(store)
    rng = random.Random(config.seed)

    addresses = []
    for index, city in enumerate(_CITIES):
        addr = store.create_object(Atom(f"g_addr{index}"), ["Address"])
        store.set_attr(addr, "City", city)
        store.set_attr(addr, "Street", f"Main {index}")
        store.set_attr(addr, "State", "XX")
        addresses.append(addr)

    people = []
    employees = []
    for index in range(config.n_people):
        is_employee = index < config.n_employees
        cls = "Employee" if is_employee else "Person"
        obj = store.create_object(Atom(f"g_p{index}"), [cls])
        store.set_attr(obj, "Name", f"P{index}")
        store.set_attr(obj, "Age", rng.randint(1, 90))
        store.set_attr(obj, "Residence", rng.choice(addresses))
        people.append(obj)
        if is_employee:
            store.set_attr(obj, "Salary", rng.randint(15000, 320000))
            employees.append(obj)

    for obj in employees:
        family_size = min(
            rng.randint(0, config.max_family), len(people)
        )
        if family_size:
            store.set_attr_set(
                obj, "FamMembers", rng.sample(people, family_size)
            )
        if rng.random() < 0.4:
            dependents = min(rng.randint(1, 2), len(people))
            store.set_attr_set(
                obj, "Dependents", rng.sample(people, dependents)
            )

    companies = []
    vehicles: List = []
    for cindex in range(config.n_companies):
        company = store.create_object(Atom(f"g_c{cindex}"), ["Company"])
        store.set_attr(company, "Name", f"Company{cindex}")
        store.set_attr(company, "Headquarters", rng.choice(addresses))
        if employees:
            store.set_attr(company, "President", rng.choice(employees))
        divisions = []
        for dindex in range(config.divisions_per_company):
            division = store.create_object(
                Atom(f"g_c{cindex}d{dindex}"), ["Division"]
            )
            store.set_attr(division, "Name", f"Div{cindex}_{dindex}")
            store.set_attr(division, "Function", "ops")
            store.set_attr(division, "Location", rng.choice(addresses))
            if employees:
                members = rng.sample(
                    employees,
                    min(len(employees), rng.randint(1, 6)),
                )
                store.set_attr(division, "Manager", members[0])
                store.set_attr_set(division, "Employees", members)
            divisions.append(division)
        store.set_attr_set(company, "Divisions", divisions)
        companies.append(company)

    for vindex in range(max(1, config.n_people // 2)):
        engine_cls = rng.choice(_ENGINE_CLASSES)
        engine = store.create_object(Atom(f"g_e{vindex}"), [engine_cls])
        store.set_attr(engine, "HPpower", rng.randint(20, 400))
        store.set_attr(engine, "CCsize", rng.randint(100, 4000))
        store.set_attr(engine, "CylinderN", rng.randint(1, 12))
        dt = store.create_object(
            Atom(f"g_dt{vindex}"), ["VehicleDrivetrain"]
        )
        store.set_attr(dt, "Engine", engine)
        store.set_attr(dt, "Transmission", rng.choice(("manual", "auto")))
        vehicle = store.create_object(Atom(f"g_v{vindex}"), ["Automobile"])
        store.set_attr(vehicle, "Model", f"Model{vindex}")
        store.set_attr(vehicle, "Color", rng.choice(_COLORS))
        store.set_attr(vehicle, "Drivetrain", dt)
        if companies:
            store.set_attr(vehicle, "Manufacturer", rng.choice(companies))
        vehicles.append(vehicle)

    for obj in people:
        count = rng.randint(0, config.max_vehicles)
        if count and vehicles:
            store.set_attr_set(
                obj,
                "OwnedVehicles",
                rng.sample(vehicles, min(count, len(vehicles))),
            )
    return store
