"""Logical object identities and id-terms (paper §2 and §4.2).

The paper's data model refers to objects through *logical object ids*, which
are syntactic terms of the query language:

* symbolic atoms such as ``mary123`` or ``uniSQL`` (:class:`Atom`);
* literal values such as ``20`` or ``'newyork'``, whose logical id carries
  "the usual properties" of the number or string (:class:`Value`);
* applications of *id-functions* to other id-terms, such as
  ``secretary(dept77)`` or ``CompSalaries(c1, e7)`` (:class:`FuncOid`).

An *id-term* in general may also contain variables (§4.2): ``an id-term is
either an oid, a variable (class, method, or individual), or an expression of
the form f(t1, ..., tn)``.  :class:`Variable` carries one of the four sorts
used by XSQL: individual (``X``), class (``#X``), method (``"Y``), and path
(``*Y``).

All term classes are immutable and hashable so they can live in sets and
serve as dictionary keys throughout the store and the evaluators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Tuple, Union

__all__ = [
    "Term",
    "Oid",
    "Atom",
    "Value",
    "FuncOid",
    "VarSort",
    "Variable",
    "NIL",
    "oid",
    "is_ground",
    "substitute",
    "variables_of",
    "term_sort_key",
]

Scalar = Union[int, float, str, bool]


class Term:
    """Common base class for id-terms (oids and variables)."""

    __slots__ = ()


class Oid(Term):
    """Base class for *ground* id-terms, i.e. logical object ids."""

    __slots__ = ()


@dataclass(frozen=True)
class Atom(Oid):
    """A symbolic logical oid: ``mary123``, ``Person``, ``Residence`` ...

    Atoms name individuals, classes, and methods alike; which role an atom
    plays is determined by the catalogue (§2: "we do not completely isolate
    the space of attribute names from the space of other logical oids").
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Atom({self.name!r})"


@dataclass(frozen=True)
class Value(Oid):
    """A literal object: a number, string, or boolean.

    Per §2, ``'20'`` is "a logical id of the abstract object with the usual
    properties of the number 20"; likewise for strings.  Literal objects are
    instances of the built-in catalogue classes ``Numeral``, ``String`` and
    ``Boolean``.
    """

    value: Scalar

    def __post_init__(self) -> None:
        if isinstance(self.value, bool):
            return
        if not isinstance(self.value, (int, float, str)):
            raise TypeError(f"unsupported literal payload: {self.value!r}")

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)

    def __repr__(self) -> str:
        return f"Value({self.value!r})"


@dataclass(frozen=True)
class FuncOid(Oid):
    """An id-function application ``f(t1, ..., tn)`` over ground id-terms.

    Id-functions "invent new object identifiers by applying function symbols
    to existing object identifiers" (§1, following [KW89]); they are how
    object-creating queries and views mint fresh, reproducible oids (§4).
    """

    functor: str
    args: Tuple[Oid, ...]

    def __post_init__(self) -> None:
        for arg in self.args:
            if not isinstance(arg, Oid):
                raise TypeError(f"FuncOid argument must be ground, got {arg!r}")

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.functor}({inner})"

    def __repr__(self) -> str:
        return f"FuncOid({self.functor!r}, {self.args!r})"


class VarSort(enum.Enum):
    """The four variable sorts of XSQL (§3.1).

    ``INDIVIDUAL`` variables range over ids of individual objects,
    ``CLASS`` variables (written ``#X``) over class-objects, ``METHOD``
    variables (written ``"Y``) over method-objects (including attributes),
    and ``PATH`` variables (written ``*Y``) over finite sequences of
    method-objects.
    """

    INDIVIDUAL = "individual"
    CLASS = "class"
    METHOD = "method"
    PATH = "path"


_SORT_PREFIX = {
    VarSort.INDIVIDUAL: "",
    VarSort.CLASS: "#",
    VarSort.METHOD: '"',
    VarSort.PATH: "*",
}


@dataclass(frozen=True)
class Variable(Term):
    """A sorted query variable."""

    name: str
    sort: VarSort = VarSort.INDIVIDUAL

    def __str__(self) -> str:
        return _SORT_PREFIX[self.sort] + self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r}, {self.sort.value})"


#: The special object returned by methods invoked purely for side effects
#: (paper §5: "Notice the special-looking object, nil").
NIL = Atom("nil")


def oid(raw: Union[Oid, Scalar]) -> Oid:
    """Coerce a Python scalar or an existing oid into an :class:`Oid`.

    Strings become :class:`Value` literals, *not* atoms: symbolic names must
    be constructed explicitly via :class:`Atom`.  This keeps ``'Ford'`` (a
    string object) distinct from ``Ford`` (a symbolic oid) exactly as the
    query syntax does.
    """
    if isinstance(raw, Oid):
        return raw
    return Value(raw)


def is_ground(term: Term) -> bool:
    """Return True iff *term* contains no variables."""
    return isinstance(term, Oid)


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield the variables occurring in *term* (at most one for our terms)."""
    if isinstance(term, Variable):
        yield term


def substitute(term: Term, bindings: Mapping[Variable, Oid]) -> Term:
    """Apply *bindings* to *term*, returning a (possibly still open) term."""
    if isinstance(term, Variable):
        return bindings.get(term, term)
    return term


_KIND_ORDER: Dict[type, int] = {Value: 0, Atom: 1, FuncOid: 2, Variable: 3}


def term_sort_key(term: Term) -> Tuple:
    """A total order over terms, for deterministic query output.

    Literals sort first (numbers before strings, by value), then atoms by
    name, then id-function applications structurally, then variables.
    """
    if isinstance(term, Value):
        if isinstance(term.value, bool):
            return (0, 0, (2, str(term.value)))
        if isinstance(term.value, (int, float)):
            return (0, 0, (0, float(term.value)))
        return (0, 0, (1, term.value))
    if isinstance(term, Atom):
        return (1, term.name)
    if isinstance(term, FuncOid):
        return (2, term.functor, tuple(term_sort_key(a) for a in term.args))
    if isinstance(term, Variable):
        return (3, term.sort.value, term.name)
    raise TypeError(f"not a term: {term!r}")
