"""Id-functions: reproducible oids for created objects (paper §4.1).

"Associated with the query there is some partial function f, called
id-function, such that the object id of the tuple generated from x and w is
f(x, w).  ...  the function can be stored as a table showing explicitly the
oid created for each pair of object id's."

That table is exactly what :class:`IdFunctionRegistry` keeps: for every
id-function symbol, the set of argument tuples on which it is defined.  The
registry is what lets a path expression with an id-term head such as
``CompSalaries(Y, W)`` enumerate the existing view objects when some
arguments are still unbound.
"""

from __future__ import annotations

import re
from typing import Dict, List, Set, Tuple

from repro.oid import FuncOid, Oid

__all__ = ["IdFunctionRegistry"]

_ADHOC_FUNCTOR = re.compile(r"qf(\d+)\Z")


class IdFunctionRegistry:
    """The stored table of id-function instantiations."""

    def __init__(self) -> None:
        self._instances: Dict[str, Set[Tuple[Oid, ...]]] = {}
        self._counter = 0

    def fresh_functor(self, prefix: str = "qf") -> str:
        """Allocate a new id-function symbol for an ad-hoc creating query.

        "The user does not have to know what the function f is" (§4.1) —
        sessions name ad-hoc query functions ``qf1``, ``qf2``, ...
        """
        self._counter += 1
        return f"{prefix}{self._counter}"

    def record(self, functor: str, args: Tuple[Oid, ...]) -> FuncOid:
        """Record that ``functor(args)`` is defined, returning the oid."""
        self._instances.setdefault(functor, set()).add(tuple(args))
        return FuncOid(functor, tuple(args))

    def forget(self, functor: str) -> None:
        """Drop all instantiations of a functor (view refresh)."""
        self._instances.pop(functor, None)

    def known(self, functor: str) -> bool:
        return functor in self._instances

    def instances(self, functor: str) -> List[Tuple[Oid, ...]]:
        """All argument tuples on which the id-function is defined."""
        return sorted(
            self._instances.get(functor, ()),
            key=lambda args: tuple(str(a) for a in args),
        )

    def oids(self, functor: str) -> List[FuncOid]:
        return [FuncOid(functor, args) for args in self.instances(functor)]

    @classmethod
    def rebuild_from_store(cls, store) -> "IdFunctionRegistry":
        """Reconstruct the id-function table from a store's oids.

        A restored snapshot carries :class:`FuncOid` values inside the
        object graph but no registry; reusing the pre-snapshot registry
        would let ``fresh_functor`` collide with a restored ``qfN`` (two
        unrelated creating queries sharing one functor — two descriptions
        of "the same" object, §4.1).  So: scan every known oid, re-record
        each functor application (recursing through nested arguments),
        and reseed the ad-hoc counter past the highest restored ``qfN``.
        """
        registry = cls()
        seen: Set[FuncOid] = set()

        def visit(oid: Oid) -> None:
            if isinstance(oid, FuncOid) and oid not in seen:
                seen.add(oid)
                registry.record(oid.functor, tuple(oid.args))
                for arg in oid.args:
                    visit(arg)

        for oid in store.known_objects():
            visit(oid)
        highest = 0
        for functor in registry._instances:
            match = _ADHOC_FUNCTOR.match(functor)
            if match:
                highest = max(highest, int(match.group(1)))
        registry._counter = highest
        return registry
