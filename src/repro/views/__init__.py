"""Object creation and views (paper §4).

Object-creating queries assign oids to their result tuples through
*id-functions* (§4.1); views are classes whose extent is defined by such a
query (§4.2).  :class:`~repro.views.id_functions.IdFunctionRegistry` tracks
which id-function instantiations exist, :mod:`repro.views.creation` runs
creating queries (including the ill-defined-query check), and
:class:`~repro.views.views.ViewManager` owns view definitions, refresh, and
the §4.2 view-update translation.
"""

from repro.views.id_functions import IdFunctionRegistry
from repro.views.creation import execute_creation
from repro.views.views import ViewManager

__all__ = ["IdFunctionRegistry", "execute_creation", "ViewManager"]
