"""Execution of object-creating queries (paper §4.1).

For each satisfying binding of the query's FROM/WHERE, the bindings of the
``OID FUNCTION OF`` variables form a *group key*; one new object with oid
``f(key)`` is created per group.  Within a group:

* a scalar SELECT item must evaluate to the same single value in every
  binding — "two tuples with distinct salaries in the same company are two
  conflicting descriptions of the same object.  We view this situation as
  an ill-defined query (a run-time error)";
* a set-shaped SELECT item contributes the union of its values;
* a ``{W}`` item collects the bindings of ``W`` across the group — "the
  clause OID FUNCTION OF can play the role of the GROUP BY clause of SQL".

The executor also records, per created object and attribute, the *base
derivation* (which base object/method the value was read from) whenever it
is unambiguous; :mod:`repro.views.views` uses these derivations to
translate view updates into database updates (§4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import IllDefinedQueryError, QueryError, UnsafeQueryError
from repro.oid import Atom, FuncOid, Oid, term_sort_key
from repro.views.id_functions import IdFunctionRegistry
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator
from repro.xsql.paths import Bindings

__all__ = [
    "CreationOutcome",
    "Derivation",
    "execute_creation",
    "materialize_group",
]


@dataclass(frozen=True)
class Derivation:
    """Where a view attribute's value came from in the base database."""

    target: Oid
    method: Atom
    args: Tuple[Oid, ...] = ()


@dataclass
class CreationOutcome:
    """Everything a creating query produced."""

    functor: str
    created: List[FuncOid] = field(default_factory=list)
    # (created oid, attribute name) -> unambiguous base derivation
    derivations: Dict[Tuple[FuncOid, str], Derivation] = field(
        default_factory=dict
    )
    # created oid -> the satisfying bindings of its group, in evaluation
    # order; incremental view maintenance re-derives one group's
    # attributes from exactly these envs (repro.views.maintenance).
    groups: Dict[FuncOid, List[Bindings]] = field(default_factory=dict)


def _item_name(item: ast.SelectItem) -> str:
    if isinstance(item, ast.PathItem):
        if item.name is None:
            raise QueryError(
                "object-creating queries must name every attribute "
                "(Attr = path)"
            )
        return item.name
    if isinstance(item, ast.SetItem):
        return item.name
    raise QueryError(f"unsupported SELECT item in a creating query: {item}")


def _evaluate_item_for_env(
    evaluator: Evaluator, path: ast.PathExpr, env: Bindings
) -> Tuple[FrozenSet[Oid], bool, Optional[Derivation]]:
    """Value set, shape flag, and (if determinable) the base derivation."""
    values, shaped = evaluator.walker.value_kinded(path, env)
    derivation: Optional[Derivation] = None
    if path.steps and isinstance(path.steps[-1].method_expr.method, Atom):
        last = path.steps[-1]
        prefix = ast.PathExpr(head=path.head, steps=path.steps[:-1])
        targets = {hit.tail for hit in evaluator.walker.walk(prefix, env)}
        if len(targets) == 1:
            target = next(iter(targets))
            args = tuple(
                a for a in last.method_expr.args if isinstance(a, Oid)
            )
            if len(args) == len(last.method_expr.args):
                derivation = Derivation(
                    target, last.method_expr.method, args
                )
    return values, shaped, derivation


def execute_creation(
    evaluator: Evaluator,
    query: ast.Query,
    functor: str,
    registry: IdFunctionRegistry,
    member_classes: Sequence[str] = (),
    declared_set_valued: Optional[Dict[str, bool]] = None,
) -> CreationOutcome:
    """Run an ``OID FUNCTION OF`` query, creating objects in the store."""
    if query.oid_vars is None:
        raise QueryError("not an object-creating query (no OID FUNCTION OF)")
    declared_set_valued = declared_set_valued or {}
    store = evaluator.store

    groups: Dict[Tuple[Oid, ...], List[Bindings]] = {}
    order: List[Tuple[Oid, ...]] = []
    for env in evaluator.env_stream(query):
        key_parts: List[Oid] = []
        for var in query.oid_vars:
            bound = env.get(var)
            if not isinstance(bound, Oid):
                raise UnsafeQueryError(
                    f"OID FUNCTION OF variable {var} is not bound by the "
                    f"query"
                )
            key_parts.append(bound)
        key = tuple(key_parts)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(env)

    outcome = CreationOutcome(functor=functor)
    for key in sorted(order, key=lambda k: tuple(term_sort_key(v) for v in k)):
        envs = groups[key]
        oid = registry.record(functor, key)
        store.create_object(oid, classes=member_classes)
        materialize_group(
            evaluator, query, oid, envs, declared_set_valued, outcome
        )
        outcome.created.append(oid)
        outcome.groups[oid] = envs
    return outcome


def materialize_group(
    evaluator: Evaluator,
    query: ast.Query,
    oid: FuncOid,
    envs: Sequence[Bindings],
    declared_set_valued: Dict[str, bool],
    outcome: CreationOutcome,
) -> None:
    """Derive (or re-derive) one created object's attributes from its group.

    Shared by initial materialization and incremental view maintenance:
    the group's satisfying bindings are fixed, so only the SELECT-derived
    values are recomputed and written.  A scalar attribute that lost its
    value is unset rather than left stale.
    """
    store = evaluator.store
    for item in query.select:
        name = _item_name(item)
        attribute = Atom(name)
        if isinstance(item, ast.SetItem):
            members: Set[Oid] = set()
            for env in envs:
                bound = env.get(item.var)
                if isinstance(bound, Oid):
                    members.add(bound)
            store.set_attr_set(oid, attribute, members)
            continue
        assert isinstance(item, ast.PathItem)
        per_env = [
            _evaluate_item_for_env(evaluator, item.path, env)
            for env in envs
        ]
        shaped = any(flag for _v, flag, _d in per_env)
        if name in declared_set_valued:
            shaped = declared_set_valued[name]
        if shaped:
            union: Set[Oid] = set()
            for values, _flag, _d in per_env:
                union |= values
            store.set_attr_set(oid, attribute, union)
        else:
            scalars = {
                value for values, _f, _d in per_env for value in values
            }
            if len(scalars) > 1:
                raise IllDefinedQueryError(
                    f"attribute {name} of {oid} received "
                    f"{len(scalars)} conflicting values: the "
                    f"id-function must depend on more variables (§4.1)"
                )
            if scalars:
                store.set_attr(oid, attribute, next(iter(scalars)))
            elif store.explicit_cell(oid, attribute) is not None:
                store.unset_attr(oid, attribute)
            derivations = {
                d for _v, _f, d in per_env if d is not None
            }
            if len(derivations) == 1:
                outcome.derivations[(oid, name)] = next(iter(derivations))
            else:
                outcome.derivations.pop((oid, name), None)
