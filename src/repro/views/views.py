"""Views: virtual classes defined by creating queries (paper §4.2).

``CREATE VIEW V AS SUBCLASS OF C SIGNATURE ... SELECT ... OID FUNCTION OF
...`` declares a new class, installs the signatures, and materializes one
object ``V(args)`` per group of the defining query.  "Views are constructed
via queries, which is simpler and more uniform than in other proposals";
because the view's objects carry id-function oids, views and non-views can
appear in one query (query (10)), and view updates can be translated to
base updates when view objects are in one-to-one correspondence with
objects of a base class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.datamodel.store import ObjectStore
from repro.errors import NonUpdatableViewError, ViewError
from repro.oid import Atom, FuncOid, Oid
from repro.views.creation import (
    CreationOutcome,
    Derivation,
    execute_creation,
    materialize_group,
)
from repro.views.id_functions import IdFunctionRegistry
from repro.views.maintenance import (
    ViewMaintenance,
    ViewState,
    derive_read_sets,
    group_support,
)
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator

__all__ = ["ViewDef", "ViewManager"]


@dataclass
class ViewDef:
    """A registered view: its statement plus the latest materialization."""

    name: str
    superclass: str
    query: ast.Query
    signatures: Tuple[ast.SignatureDecl, ...]
    outcome: CreationOutcome


class ViewManager:
    """Owns view definitions, materialization, refresh, and updates."""

    def __init__(
        self, store: ObjectStore, registry: IdFunctionRegistry
    ) -> None:
        self._store = store
        self._registry = registry
        self._views: Dict[str, ViewDef] = {}
        #: Per-view incremental-maintenance bookkeeping; the observer is
        #: attached to the store's write seam on the first create_view.
        self._states: Dict[str, ViewState] = {}
        self._observer = ViewMaintenance(self)
        self._observing = False

    def views(self) -> Dict[str, ViewDef]:
        return dict(self._views)

    def get(self, name: str) -> ViewDef:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"view {name} is not defined")

    # ------------------------------------------------------------------

    def create_view(
        self, statement: ast.CreateView, evaluator: Evaluator
    ) -> ViewDef:
        """Execute a CREATE VIEW statement (declares class + materializes)."""
        if statement.name in self._views:
            raise ViewError(f"view {statement.name} already exists")
        if statement.query.oid_vars is None:
            raise ViewError(
                "a view query must carry an OID FUNCTION OF clause (§4.2)"
            )
        self._store.declare_class(statement.name, [statement.superclass])
        declared: Dict[str, bool] = {}
        for sig in statement.signatures:
            self._store.declare_signature(
                statement.name,
                sig.method,
                sig.result,
                args=sig.args,
                set_valued=sig.set_valued,
            )
            if not sig.args:
                declared[sig.method] = sig.set_valued
        self._observer.muted = True
        try:
            outcome = execute_creation(
                evaluator,
                statement.query,
                functor=statement.name,
                registry=self._registry,
                member_classes=[statement.name],
                declared_set_valued=declared,
            )
        finally:
            self._observer.muted = False
        view = ViewDef(
            name=statement.name,
            superclass=statement.superclass,
            query=statement.query,
            signatures=statement.signatures,
            outcome=outcome,
        )
        self._views[statement.name] = view
        if not self._observing:
            self._store.add_observer(self._observer)
            self._observing = True
        self._register(view, evaluator)
        return view

    def refresh(self, name: str, evaluator: Evaluator) -> ViewDef:
        """Re-materialize a view after base-data changes.

        Views here are materialized with explicit refresh; the paper's
        semantics is state-at-evaluation, so callers refresh after updating
        base objects that feed the view.
        """
        view = self.get(name)
        started = time.perf_counter()
        self._observer.muted = True
        try:
            for oid in self._registry.oids(name):
                self._store.purge_object(oid)
            self._registry.forget(name)
            declared = {
                sig.method: sig.set_valued
                for sig in view.signatures
                if not sig.args
            }
            view.outcome = execute_creation(
                evaluator,
                view.query,
                functor=name,
                registry=self._registry,
                member_classes=[name],
                declared_set_valued=declared,
            )
        finally:
            self._observer.muted = False
        state = self._register(view, evaluator)
        state.last_kind = "refresh"
        state.last_seconds = time.perf_counter() - started
        state.last_groups = len(view.outcome.created)
        return view

    # ------------------------------------------------------------------
    # incremental maintenance (repro.views.maintenance)
    # ------------------------------------------------------------------

    def _register(self, view: ViewDef, evaluator: Evaluator) -> ViewState:
        """(Re)derive a view's read sets and support index; stamp fresh."""
        read = derive_read_sets(view.query, self._store)
        support: Dict[Oid, Set[FuncOid]] = {}
        for oid, envs in view.outcome.groups.items():
            for owner in group_support(evaluator.walker, view.query, envs):
                support.setdefault(owner, set()).add(oid)
        state = ViewState(
            read=read,
            version=self._store.version,
            support=support,
        )
        self._states[view.name] = state
        return state

    def pending(self) -> bool:
        """Is any materialized view stale?  Cheap enough for every query."""
        if not self._states:
            return False
        version = self._store.version
        return any(
            state.staleness(version) != "fresh"
            for state in self._states.values()
        )

    def maintenance_status(self) -> Dict[str, Dict[str, object]]:
        """Per-view staleness and last-maintenance cost (REPL ``.views``)."""
        version = self._store.version
        return {
            name: {
                "state": state.staleness(version),
                "objects": len(self._views[name].outcome.created),
                "pending_groups": len(state.pending_groups),
                "last_kind": state.last_kind,
                "last_seconds": state.last_seconds,
                "last_groups": state.last_groups,
            }
            for name, state in self._states.items()
        }

    def sync(self, evaluator: Evaluator) -> List[Dict[str, object]]:
        """Bring every stale view up to date; returns one event per view.

        DDL (a schema-component mismatch between the view's stamped
        version and the store's) rebuilds the view and re-derives its
        read sets; structural data changes re-materialize with the
        existing read sets; select-only deltas re-derive just the
        pending groups.
        """
        version = self._store.version
        events: List[Dict[str, object]] = []
        for name in list(self._views):
            state = self._states.get(name)
            if state is None:
                continue
            staleness = state.staleness(version)
            if staleness == "fresh":
                continue
            started = time.perf_counter()
            if staleness == "rebuild-pending" or state.structural:
                kind = (
                    "rebuild" if staleness == "rebuild-pending" else "refresh"
                )
                self.refresh(name, evaluator)
                state = self._states[name]
                touched = len(self._views[name].outcome.created)
            else:
                kind = "targeted"
                touched = self._maintain_groups(name, evaluator)
            state.last_kind = kind
            state.last_seconds = time.perf_counter() - started
            state.last_groups = touched
            events.append(
                {
                    "view": name,
                    "kind": kind,
                    "groups": touched,
                    "seconds": state.last_seconds,
                }
            )
        return events

    def _maintain_groups(self, name: str, evaluator: Evaluator) -> int:
        """Re-derive only the pending groups of one view (O(delta))."""
        view = self._views[name]
        state = self._states[name]
        declared = {
            sig.method: sig.set_valued
            for sig in view.signatures
            if not sig.args
        }
        self._observer.muted = True
        try:
            for oid in sorted(state.pending_groups, key=str):
                envs = view.outcome.groups.get(oid)
                if envs is None:
                    continue
                materialize_group(
                    evaluator, view.query, oid, envs, declared, view.outcome
                )
                self._update_support(
                    state,
                    oid,
                    group_support(evaluator.walker, view.query, envs),
                )
        finally:
            self._observer.muted = False
        touched = len(state.pending_groups)
        state.pending_groups = set()
        return touched

    @staticmethod
    def _update_support(
        state: ViewState, oid: FuncOid, fresh: Set[Oid]
    ) -> None:
        """Replace one group's slice of the owner→groups support index."""
        for owner, groups in list(state.support.items()):
            if oid in groups and owner not in fresh:
                groups.discard(oid)
                if not groups:
                    del state.support[owner]
        for owner in fresh:
            state.support.setdefault(owner, set()).add(oid)

    # -- write-event classification (called by ViewMaintenance) ---------

    def _closure_hits(self, cls: Atom, classes: Set[Atom]) -> bool:
        hierarchy = self._store.hierarchy
        return any(
            cls == c
            or (cls in hierarchy and hierarchy.is_subclass(cls, c))
            for c in classes
        )

    def _on_cell(self, owner: Oid, method: Atom) -> None:
        for state in self._states.values():
            read = state.read
            if (
                read.method_wildcard
                or read.literal_domain
                or method in read.where_methods
            ):
                state.structural = True
            elif method in read.select_methods:
                if self._store.catalogue.is_class(owner):
                    # Class-level default cells feed instances through
                    # behavioral inheritance — owners we cannot localize.
                    state.structural = True
                else:
                    groups = state.support.get(owner)
                    if groups:
                        state.pending_groups |= groups
                    # Owners outside the support set cannot feed the
                    # view (see the module docstring's soundness note).

    def _on_membership(self, cls: Atom, obj: Oid) -> None:
        for state in self._states.values():
            if state.read.class_wildcard or self._closure_hits(
                cls, state.read.classes
            ):
                state.structural = True

    def _on_purge(self, obj: Oid, memberships: Set[Atom]) -> None:
        for state in self._states.values():
            read = state.read
            if (
                obj in state.support
                or read.class_wildcard
                or any(
                    self._closure_hits(cls, read.classes)
                    for cls in memberships
                )
            ):
                state.structural = True

    def _on_object(self, obj: Oid) -> None:
        for state in self._states.values():
            if state.read.class_wildcard or state.read.literal_domain:
                state.structural = True

    def _on_tuple(self, name: str) -> None:
        for state in self._states.values():
            read = state.read
            if read.relations or read.class_wildcard or read.method_wildcard:
                state.structural = True

    # ------------------------------------------------------------------
    # view updates (§4.2)
    # ------------------------------------------------------------------

    def base_derivation(self, name: str, oid: FuncOid, attr: str) -> Derivation:
        """The base object/method a view attribute was derived from."""
        view = self.get(name)
        derivation = view.outcome.derivations.get((oid, attr))
        if derivation is None:
            raise NonUpdatableViewError(
                f"attribute {attr} of {oid} has no unambiguous base "
                f"derivation; the §4.2 one-to-one condition fails"
            )
        return derivation

    def update_through_view(
        self,
        name: str,
        attr: str,
        new_values: Dict[FuncOid, Oid],
        evaluator: Evaluator,
        refresh: bool = True,
    ) -> int:
        """Translate view-object updates into base-database updates.

        ``new_values`` maps view oids to the new value of *attr*.  Each
        view object must have an unambiguous derivation for *attr* (the
        one-to-one correspondence of §4.2); the base attribute is updated
        and the view re-materialized.  Returns the number of base updates.
        """
        view = self.get(name)
        updates: List[Tuple[Derivation, Oid]] = []
        for oid, value in new_values.items():
            if oid not in view.outcome.created:
                raise NonUpdatableViewError(
                    f"{oid} is not an object of view {name}"
                )
            updates.append((self.base_derivation(name, oid, attr), value))
        # Detect write-write conflicts before applying anything: two view
        # objects mapping to one base cell with different values would be
        # the view-level analogue of an ill-defined query.
        seen: Dict[Tuple[Oid, Atom, Tuple[Oid, ...]], Oid] = {}
        for derivation, value in updates:
            key = (derivation.target, derivation.method, derivation.args)
            if key in seen and seen[key] != value:
                raise NonUpdatableViewError(
                    f"conflicting updates reach base attribute "
                    f"{derivation.method} of {derivation.target}"
                )
            seen[key] = value
        for derivation, value in updates:
            self._store.set_attr(
                derivation.target, derivation.method, value, derivation.args
            )
        if refresh:
            self.refresh(name, evaluator)
        return len(updates)
