"""Views: virtual classes defined by creating queries (paper §4.2).

``CREATE VIEW V AS SUBCLASS OF C SIGNATURE ... SELECT ... OID FUNCTION OF
...`` declares a new class, installs the signatures, and materializes one
object ``V(args)`` per group of the defining query.  "Views are constructed
via queries, which is simpler and more uniform than in other proposals";
because the view's objects carry id-function oids, views and non-views can
appear in one query (query (10)), and view updates can be translated to
base updates when view objects are in one-to-one correspondence with
objects of a base class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.datamodel.store import ObjectStore
from repro.errors import NonUpdatableViewError, ViewError
from repro.oid import Atom, FuncOid, Oid
from repro.views.creation import CreationOutcome, Derivation, execute_creation
from repro.views.id_functions import IdFunctionRegistry
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator

__all__ = ["ViewDef", "ViewManager"]


@dataclass
class ViewDef:
    """A registered view: its statement plus the latest materialization."""

    name: str
    superclass: str
    query: ast.Query
    signatures: Tuple[ast.SignatureDecl, ...]
    outcome: CreationOutcome


class ViewManager:
    """Owns view definitions, materialization, refresh, and updates."""

    def __init__(
        self, store: ObjectStore, registry: IdFunctionRegistry
    ) -> None:
        self._store = store
        self._registry = registry
        self._views: Dict[str, ViewDef] = {}

    def views(self) -> Dict[str, ViewDef]:
        return dict(self._views)

    def get(self, name: str) -> ViewDef:
        try:
            return self._views[name]
        except KeyError:
            raise ViewError(f"view {name} is not defined")

    # ------------------------------------------------------------------

    def create_view(
        self, statement: ast.CreateView, evaluator: Evaluator
    ) -> ViewDef:
        """Execute a CREATE VIEW statement (declares class + materializes)."""
        if statement.name in self._views:
            raise ViewError(f"view {statement.name} already exists")
        if statement.query.oid_vars is None:
            raise ViewError(
                "a view query must carry an OID FUNCTION OF clause (§4.2)"
            )
        self._store.declare_class(statement.name, [statement.superclass])
        declared: Dict[str, bool] = {}
        for sig in statement.signatures:
            self._store.declare_signature(
                statement.name,
                sig.method,
                sig.result,
                args=sig.args,
                set_valued=sig.set_valued,
            )
            if not sig.args:
                declared[sig.method] = sig.set_valued
        outcome = execute_creation(
            evaluator,
            statement.query,
            functor=statement.name,
            registry=self._registry,
            member_classes=[statement.name],
            declared_set_valued=declared,
        )
        view = ViewDef(
            name=statement.name,
            superclass=statement.superclass,
            query=statement.query,
            signatures=statement.signatures,
            outcome=outcome,
        )
        self._views[statement.name] = view
        return view

    def refresh(self, name: str, evaluator: Evaluator) -> ViewDef:
        """Re-materialize a view after base-data changes.

        Views here are materialized with explicit refresh; the paper's
        semantics is state-at-evaluation, so callers refresh after updating
        base objects that feed the view.
        """
        view = self.get(name)
        for oid in self._registry.oids(name):
            self._store.purge_object(oid)
        self._registry.forget(name)
        declared = {
            sig.method: sig.set_valued
            for sig in view.signatures
            if not sig.args
        }
        view.outcome = execute_creation(
            evaluator,
            view.query,
            functor=name,
            registry=self._registry,
            member_classes=[name],
            declared_set_valued=declared,
        )
        return view

    # ------------------------------------------------------------------
    # view updates (§4.2)
    # ------------------------------------------------------------------

    def base_derivation(self, name: str, oid: FuncOid, attr: str) -> Derivation:
        """The base object/method a view attribute was derived from."""
        view = self.get(name)
        derivation = view.outcome.derivations.get((oid, attr))
        if derivation is None:
            raise NonUpdatableViewError(
                f"attribute {attr} of {oid} has no unambiguous base "
                f"derivation; the §4.2 one-to-one condition fails"
            )
        return derivation

    def update_through_view(
        self,
        name: str,
        attr: str,
        new_values: Dict[FuncOid, Oid],
        evaluator: Evaluator,
        refresh: bool = True,
    ) -> int:
        """Translate view-object updates into base-database updates.

        ``new_values`` maps view oids to the new value of *attr*.  Each
        view object must have an unambiguous derivation for *attr* (the
        one-to-one correspondence of §4.2); the base attribute is updated
        and the view re-materialized.  Returns the number of base updates.
        """
        view = self.get(name)
        updates: List[Tuple[Derivation, Oid]] = []
        for oid, value in new_values.items():
            if oid not in view.outcome.created:
                raise NonUpdatableViewError(
                    f"{oid} is not an object of view {name}"
                )
            updates.append((self.base_derivation(name, oid, attr), value))
        # Detect write-write conflicts before applying anything: two view
        # objects mapping to one base cell with different values would be
        # the view-level analogue of an ill-defined query.
        seen: Dict[Tuple[Oid, Atom, Tuple[Oid, ...]], Oid] = {}
        for derivation, value in updates:
            key = (derivation.target, derivation.method, derivation.args)
            if key in seen and seen[key] != value:
                raise NonUpdatableViewError(
                    f"conflicting updates reach base attribute "
                    f"{derivation.method} of {derivation.target}"
                )
            seen[key] = value
        for derivation, value in updates:
            self._store.set_attr(
                derivation.target, derivation.method, value, derivation.args
            )
        if refresh:
            self.refresh(name, evaluator)
        return len(updates)
