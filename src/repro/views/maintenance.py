"""Incremental maintenance of materialized views (§4.2 made live).

A materialized view registers what its defining query *reads*: the FROM
classes (checked against subclass closures at event time), the methods
walked by WHERE conditions, the methods walked by SELECT items, and the
relations referenced through id-term heads.  The single
:class:`~repro.datamodel.store.ObjectStore` write seam — the same sink
fan-out the storage journal hangs off — feeds every mutation to a
:class:`ViewMaintenance` observer, which classifies it:

* **irrelevant** — touches nothing the view reads: ignored, the view
  stays fresh;
* **select-only delta** — a cell write to a method only SELECT items
  read, on an object in the view's *support set* (the objects actually
  dereferenced while materializing): only the affected groups are
  re-derived at the next sync, O(delta) instead of O(database);
* **structural** — a WHERE-relevant method write, a membership change
  inside a read class's subclass closure, a purge of a supporting
  object, or a relation insert: group membership may have changed, so
  the view re-materializes fully at the next sync;
* **DDL** — detected by comparing the schema component of the store's
  :class:`~repro.datamodel.versions.Version` against the stamp taken at
  the last (re)materialization: the view is rebuilt *and* its read sets
  re-derived.

Maintenance is *lazy*: the observer only records staleness;
``Session.sync_views()`` (called by the query pipeline before every
statement) performs the actual work, muted so its own writes do not
re-trigger maintenance.  The storage journal still sees every
maintenance write — muting happens at the observer, which sits after
the journal in the sink order — so a maintained view survives
checkpoint and crash recovery.

Soundness of the support set: every object a SELECT hop dereferences is
the tail of some proper prefix of the item's path (the head binding for
the first hop), so the union of prefix-walk tails plus the env-bound
oids covers every object whose *select-only* cell writes can change the
group's derived values.  Writes that change reachability itself travel
through a prefix method — also a SELECT method — whose owner is already
in the support set, and the group's support slice is recomputed after
each targeted re-derivation.  Two deliberate over-approximations stay
conservative: method variables / computed implementations widen to
"every cell write is structural", and a FROM clause over a built-in
literal class (whose extent is the active domain) does the same.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.datamodel.catalogue import BUILTIN_CLASSES
from repro.datamodel.versions import Version
from repro.oid import Atom, FuncOid, Oid, Variable
from repro.xsql import ast

__all__ = [
    "ReadSets",
    "ViewState",
    "ViewMaintenance",
    "derive_read_sets",
    "group_support",
]


@dataclass
class ReadSets:
    """What one view's defining query reads from the store."""

    classes: Set[Atom] = field(default_factory=set)
    where_methods: Set[Atom] = field(default_factory=set)
    select_methods: Set[Atom] = field(default_factory=set)
    relations: Set[str] = field(default_factory=set)
    #: FROM (or ``instanceOf``) ranges over a class variable — any
    #: membership change may matter.
    class_wildcard: bool = False
    #: A method variable or a computed implementation is read — its
    #: dependencies are invisible, so any cell write may matter.
    method_wildcard: bool = False
    #: FROM ranges over a built-in literal class, whose extent is the
    #: active domain: it can grow without any membership event.
    literal_domain: bool = False


@dataclass
class ViewState:
    """Per-view maintenance bookkeeping held by the ViewManager."""

    read: ReadSets
    #: ``store.version`` at the last (re)materialization; a schema-
    #: component mismatch at sync time means DDL happened → full
    #: rebuild.  Data deltas between the stamp and the current version
    #: arrive through the observer as pending groups / structural flags.
    version: "Version"
    #: owner oid → view oids whose derived values read that owner.
    support: Dict[Oid, Set[FuncOid]] = field(default_factory=dict)
    pending_groups: Set[FuncOid] = field(default_factory=set)
    structural: bool = False
    last_kind: str = "materialize"
    last_seconds: float = 0.0
    last_groups: int = 0

    def staleness(self, current: "Version") -> str:
        """``fresh`` / ``delta-pending`` / ``rebuild-pending``."""
        if not self.version.same_schema(current):
            return "rebuild-pending"
        if self.structural or self.pending_groups:
            return "delta-pending"
        return "fresh"


class ViewMaintenance:
    """The store write observer feeding per-write deltas to the manager.

    Thin by design: every data event forwards to the ViewManager's
    classification handlers unless ``muted`` (set during maintenance
    itself, so re-materialization writes do not mark views stale
    again).  Schema events need no forwarding — the manager compares
    the schema component of the store's version against each view's
    stamp at sync time instead.
    """

    def __init__(self, manager) -> None:
        self._manager = manager
        self.muted = False

    # -- data events ---------------------------------------------------

    def note_cell(
        self,
        owner,
        method,
        args,
        old_values,
        new_values,
        scalar=False,
        present=True,
    ):
        if not self.muted and old_values != new_values:
            self._manager._on_cell(owner, method)

    def note_membership(self, cls, obj, added):
        if not self.muted:
            self._manager._on_membership(cls, obj)

    def note_purge(self, obj, memberships, cells):
        if not self.muted:
            self._manager._on_purge(obj, memberships)

    def note_object(self, obj):
        if not self.muted:
            self._manager._on_object(obj)

    def note_tuple(self, name, row):
        if not self.muted:
            self._manager._on_tuple(name)

    # -- schema events (covered by the generation stamp) ----------------

    def note_class(self, cls, parents):
        pass

    def note_signature(self, cls, method, result, args, set_valued):
        pass

    def note_resolution(self, cls, method, use_class):
        pass

    def note_index(self, method, enabled):
        pass

    def note_relation(self, name, column_names):
        pass


# ----------------------------------------------------------------------
# read-set derivation
# ----------------------------------------------------------------------


def derive_read_sets(query: ast.Query, store) -> ReadSets:
    """Classes, methods, and relations the defining query reads.

    Derived from the query's scans and path walks — exactly the
    information the lowered operator tree carries (its extent scans come
    from the FROM declarations, its hash/pointer joins and filters from
    the WHERE paths) — plus the store-dependent widenings: computed
    implementations and literal-class extents.
    """
    read = ReadSets()
    _scan_query(query, read)
    if not read.method_wildcard:
        for method in read.where_methods | read.select_methods:
            if store.implementation_classes(method):
                read.method_wildcard = True
                break
    return read


def _scan_query(query: ast.Query, read: ReadSets) -> None:
    for decl in query.from_:
        if isinstance(decl.cls, Variable):
            read.class_wildcard = True
        else:
            read.classes.add(decl.cls)
            if decl.cls in BUILTIN_CLASSES:
                read.literal_domain = True
    for item in query.select:
        if isinstance(item, ast.PathItem):
            _scan_path(item.path, read.select_methods, read)
        elif isinstance(item, ast.MethodItem):
            read.method_wildcard = True
    if query.where is not None:
        _scan_cond(query.where, read)


def _scan_cond(cond: ast.Cond, read: ReadSets) -> None:
    if isinstance(cond, ast.PathCond):
        _scan_path(cond.path, read.where_methods, read)
    elif isinstance(cond, ast.Comparison):
        _scan_operand(cond.lhs, read)
        _scan_operand(cond.rhs, read)
    elif isinstance(cond, ast.SchemaCond):
        if cond.kind == "instanceOf":
            read.class_wildcard = True
    elif isinstance(cond, ast.NotCond):
        _scan_cond(cond.item, read)
    elif isinstance(cond, (ast.AndCond, ast.OrCond)):
        for item in cond.items:
            _scan_cond(item, read)
    else:
        # UpdateCond or an unknown condition: fully conservative.
        read.class_wildcard = True
        read.method_wildcard = True


def _scan_operand(operand: ast.Operand, read: ReadSets) -> None:
    if isinstance(operand, (ast.PathOperand, ast.AggOperand)):
        _scan_path(operand.path, read.where_methods, read)
    elif isinstance(operand, (ast.SetOpOperand, ast.ArithOperand)):
        _scan_operand(operand.left, read)
        _scan_operand(operand.right, read)
    elif isinstance(operand, ast.SubQueryOperand):
        sub = ReadSets()
        _scan_query(operand.query, sub)
        # Everything a WHERE subquery reads is WHERE-relevant.
        read.classes |= sub.classes
        read.where_methods |= sub.where_methods | sub.select_methods
        read.relations |= sub.relations
        read.class_wildcard |= sub.class_wildcard
        read.method_wildcard |= sub.method_wildcard
        read.literal_domain |= sub.literal_domain


def _scan_path(path: ast.PathExpr, methods: Set[Atom], read: ReadSets) -> None:
    if isinstance(path.head, ast.App):
        read.relations.add(path.head.functor)
    for step in path.steps:
        method = step.method_expr.method
        if isinstance(method, Atom):
            methods.add(method)
        else:
            read.method_wildcard = True
        if isinstance(step.selector, ast.App):
            read.relations.add(step.selector.functor)


# ----------------------------------------------------------------------
# support sets
# ----------------------------------------------------------------------


def group_support(walker, query: ast.Query, envs) -> Set[Oid]:
    """Every object whose cells the group's SELECT items dereference."""
    support: Set[Oid] = set()
    for env in envs:
        for value in env.values():
            if isinstance(value, Oid):
                support.add(value)
        for item in query.select:
            if not isinstance(item, ast.PathItem):
                continue
            path = item.path
            for length in range(len(path.steps)):
                prefix = ast.PathExpr(
                    head=path.head, steps=path.steps[:length]
                )
                for hit in walker.walk(prefix, env):
                    support.add(hit.tail)
    return support
