"""Method signatures and type expressions (paper §2 "Types" and §6.1).

A signature ``M : A1, ..., Ak => R`` attached to class ``A0`` pairs the
method name ``M`` with the *type expression* ``A0, A1, ..., Ak ~> R``, where
``~>`` is ``=>`` for scalar methods and ``=>>`` for set-valued ones.
Attributes are 0-ary methods, so an attribute signature ``attr => class`` is
simply the ``k = 0`` case.

§6.1 defines the sub/supertype order on type expressions: ``(A0', ..., Ak'
~> R')`` is a *supertype* of ``(A0, ..., Ak ~> R)`` iff each ``Ai'`` is a
(possibly nonstrict) subclass of ``Ai``, ``R'`` is a (possibly nonstrict)
superclass of ``R``, and both use the same kind of arrow.  A method
*possesses* the upward closure of its declared type expressions, and this
closure is exactly the effect of structural (covariant) inheritance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.datamodel.hierarchy import ClassHierarchy
from repro.errors import SignatureError
from repro.oid import Atom

__all__ = ["TypeExpr", "Signature", "combine_result_classes"]


@dataclass(frozen=True)
class TypeExpr:
    """A type expression ``scope, args ~> result`` (paper (14)/(15)).

    ``scope`` is the class of the 0-th argument — the object in whose scope
    the method is invoked.  ``set_valued`` selects the double arrow.
    """

    scope: Atom
    args: Tuple[Atom, ...]
    result: Atom
    set_valued: bool = False

    @property
    def arity(self) -> int:
        """The number of explicit arguments (not counting the scope)."""
        return len(self.args)

    def arrow(self) -> str:
        return "=>>" if self.set_valued else "=>"

    def __str__(self) -> str:
        prefix = ", ".join(str(c) for c in (self.scope, *self.args))
        return f"({prefix} {self.arrow()} {self.result})"

    # ------------------------------------------------------------------
    # the sub/supertype order (§6.1)
    # ------------------------------------------------------------------

    def is_supertype_of(
        self, other: "TypeExpr", hierarchy: ClassHierarchy
    ) -> bool:
        """True iff *self* is a supertype of *other* (superset of functions).

        Per §6.1: the supertype's argument classes (including the scope)
        are *subclasses* of the subtype's, and its result class is a
        *superclass* — a partial function declared on the larger domain
        with the smaller result set belongs to every such wider set.
        Arrow kinds must agree.
        """
        if self.set_valued != other.set_valued or self.arity != other.arity:
            return False
        if not hierarchy.is_subclass(self.scope, other.scope, strict=False):
            return False
        for mine, theirs in zip(self.args, other.args):
            if not hierarchy.is_subclass(mine, theirs, strict=False):
                return False
        return hierarchy.is_subclass(other.result, self.result, strict=False)

    def is_subtype_of(
        self, other: "TypeExpr", hierarchy: ClassHierarchy
    ) -> bool:
        return other.is_supertype_of(self, hierarchy)

    def applies_to_scope(
        self, scope_classes: Iterable[Atom], hierarchy: ClassHierarchy
    ) -> bool:
        """Is an object belonging to all *scope_classes* inside this scope?"""
        return any(
            hierarchy.is_subclass(c, self.scope, strict=False)
            for c in scope_classes
        )


@dataclass(frozen=True)
class Signature:
    """A method signature as declared on a class: name + type expression."""

    method: Atom
    type_expr: TypeExpr

    def __post_init__(self) -> None:
        if not isinstance(self.method, Atom):
            raise SignatureError(
                f"method name must be an Atom, got {self.method!r}"
            )

    @property
    def arity(self) -> int:
        return self.type_expr.arity

    @property
    def set_valued(self) -> bool:
        return self.type_expr.set_valued

    @property
    def result(self) -> Atom:
        return self.type_expr.result

    def __str__(self) -> str:
        te = self.type_expr
        if te.arity == 0:
            return f"{self.method} {te.arrow()} {te.result}"
        args = ", ".join(str(a) for a in te.args)
        return f"{self.method} : {args} {te.arrow()} {te.result}"


def combine_result_classes(
    method: Atom,
    scope: Atom,
    args: Tuple[Atom, ...],
    results: Iterable[Atom],
    set_valued: bool,
) -> List[Signature]:
    """Expand the brace shorthand ``M : A =>> {student, employee}`` (§2).

    "When more than one signature is specified in this way we can save
    writing by combining them" — the combined form denotes one signature per
    result class, all sharing scope/arguments.
    """
    return [
        Signature(method, TypeExpr(scope, args, result, set_valued))
        for result in results
    ]
