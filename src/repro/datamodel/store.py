"""The object store: the paper's data model behind one facade (§2).

An :class:`ObjectStore` holds the class hierarchy, the catalogue, declared
signatures, instance-of memberships, explicit attribute/method value cells,
registered method implementations, and first-class relations.  Its most
important operation is :meth:`ObjectStore.invoke`, which resolves a method
invocation the way the paper prescribes:

1. an explicitly stored value on the object itself wins;
2. otherwise the value is *behaviorally inherited* from the most specific
   class that carries a default value, with Meyer-style explicit resolution
   of multiple-inheritance conflicts;
3. otherwise a registered *implementation* (native or query-defined) is
   selected by the same inheritance rules and invoked.

An empty result means the method is *undefined* for those arguments (the
OODB analogue of null); whether it is also *inapplicable* is a question for
the type system (:mod:`repro.typing`), not the store — matching the paper's
treatment of typing as a metalogical notion (§6.2).
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.datamodel.catalogue import Catalogue
from repro.datamodel.hierarchy import OBJECT_CLASS, ClassHierarchy
from repro.datamodel.indexes import AttributeIndexes
from repro.datamodel.inheritance import InheritanceResolver
from repro.datamodel.methods import MethodImplementation
from repro.datamodel.objects import Cell, ObjectRecord, ScalarCell, SetCell
from repro.datamodel.relations import StoredRelation
from repro.datamodel.signatures import Signature, TypeExpr
from repro.datamodel.statistics import MethodStats, StatisticsCatalogue
from repro.errors import (
    ArityError,
    SchemaError,
    SignatureError,
    UnknownClassError,
)
from repro.oid import Atom, FuncOid, Oid, Value, oid as as_oid

__all__ = ["ObjectStore"]

ClassLike = Union[Atom, str]
OidLike = Union[Oid, int, float, str, bool]


def _atom(name: ClassLike) -> Atom:
    return name if isinstance(name, Atom) else Atom(name)


class ObjectStore:
    """A complete object-oriented database instance."""

    def __init__(
        self,
        strict_method_namespace: bool = False,
        validate_values: bool = False,
    ) -> None:
        self.hierarchy = ClassHierarchy()
        self.catalogue = Catalogue(
            self.hierarchy, strict_method_namespace=strict_method_namespace
        )
        #: When on, stored values must be instances of some declared
        #: result class of the attribute (a conservative schema mode; the
        #: paper's default treats typing as metalogical).
        self.validate_values = validate_values
        self.resolver = InheritanceResolver(self.hierarchy)
        self._records: Dict[Oid, ObjectRecord] = {}
        self._memberships: Dict[Oid, Set[Atom]] = {}
        self._direct_extents: Dict[Atom, Set[Oid]] = {}
        # (class, method) -> implementation
        self._implementations: Dict[Tuple[Atom, Atom], MethodImplementation] = {}
        # class -> method -> [Signature, ...]  (declared, pre-inheritance)
        self._signatures: Dict[Atom, Dict[Atom, List[Signature]]] = {}
        self._relations: Dict[str, StoredRelation] = {}
        self._known: Set[Oid] = set()
        #: Opt-in inverted attribute indexes ([BERT89]-style).  Private:
        #: go through :meth:`enable_index` / :meth:`indexed_methods` /
        #: :meth:`lookup_by_value` (or the Session-level wrappers).
        self._indexes = AttributeIndexes()
        #: Incrementally maintained cardinality statistics feeding the
        #: cost-based planner (:mod:`repro.xsql.costplan`).
        self.statistics = StatisticsCatalogue()
        #: Monotone counter bumped by every schema-shaping operation
        #: (classes, signatures, relations, implementations, inheritance
        #: resolutions, indexes).  Compiled query plans are keyed on it:
        #: typing analysis and plan choice depend only on the schema, so
        #: DDL invalidates cached plans while plain data writes do not
        #: (data-dependent artifacts such as Theorem 6.1 extent
        #: restrictions are recomputed per execution).
        self.schema_generation = 0
        #: (method, frozenset-of-direct-classes) -> declared arrow kinds
        #: (set of ``set_valued`` flags).  The write path consults the
        #: schema on every cell write; memoizing the visible kinds per
        #: membership set makes bulk loads (``repro.workloads.scale``)
        #: scale to millions of objects.  Cleared on every schema bump.
        self._arrow_kinds: Dict[
            Tuple[Atom, FrozenSet[Atom]], FrozenSet[bool]
        ] = {}
        #: Optional persistence listener
        #: (:class:`repro.storage.codec.StoreJournal`).  When attached,
        #: every mutation below emits codec-encoded KV operations; the
        #: default ``None`` keeps the historical dict store's write path
        #: free of any storage overhead beyond one tuple iteration.
        self._journal = None
        #: Additional write observers (e.g. incremental view
        #: maintenance).  Observers duck-type the journal's ``note_*``
        #: surface; they are notified *after* the journal so durability
        #: always precedes derived-state bookkeeping.
        self._observers: Tuple = ()
        #: The fan-out tuple every mutator iterates: journal first (when
        #: attached), then observers, in registration order.
        self._sinks: Tuple = ()
        #: MVCC bookkeeping: the mutation ticket, snapshot pins, and the
        #: copy-on-write pre-image chains pinned snapshots read through
        #: (:mod:`repro.datamodel.versions`).  Imported lazily — versions
        #: subclasses this class for :class:`StoreView`.
        from repro.datamodel.versions import VersionHistory

        self._history = VersionHistory(self)

    # ------------------------------------------------------------------
    # versions and snapshots (MVCC)
    # ------------------------------------------------------------------

    @property
    def version(self):
        """The current committed :class:`~repro.datamodel.versions.Version`.

        Ticket, schema generation, and statistics generation in one
        stamp — the single staleness currency for every cached artifact
        (compiled plans, cost plans, path caches, view states).
        """
        return self._history.version_of(self)

    @property
    def write_lock(self):
        """The store-level write lock (reentrant; readers never take it)."""
        return self._history.lock

    def pin(self):
        """Pin the current version; release via the returned pin."""
        return self._history.pin()

    def at(self, pin):
        """A read-only :class:`~repro.datamodel.versions.StoreView` at *pin*."""
        from repro.datamodel.versions import StoreView

        return StoreView(self, pin)

    def snapshot_view(self):
        """Pin the current version and return a view reading at it."""
        return self.at(self.pin())

    def version_status(self) -> Dict[str, int]:
        """Pin and copy-on-write chain statistics (observability)."""
        return self._history.status()

    def restore_version_ticket(self, ticket: int) -> None:
        """Adopt a recovered mutation ticket (checkpoint/WAL replay)."""
        self._history.restore(ticket)

    # ------------------------------------------------------------------
    # write sinks: the persistence journal + write observers
    # ------------------------------------------------------------------

    def _rebuild_sinks(self) -> None:
        journal = (self._journal,) if self._journal is not None else ()
        self._sinks = journal + self._observers

    @property
    def journal(self):
        """The attached persistence journal, or None (dict backend)."""
        return self._journal

    def set_journal(self, journal) -> None:
        """Attach (or with None, detach) the persistence journal.

        The journal must duck-type
        :class:`repro.storage.codec.StoreJournal`; attaching does not
        emit anything by itself — use
        :func:`repro.storage.codec.encode_store` first when the engine
        should mirror already-present state.
        """
        self._journal = journal
        self._rebuild_sinks()

    def add_observer(self, observer) -> None:
        """Attach a write observer (same ``note_*`` surface as the journal).

        Observers see every mutation after the journal does.  Attaching
        is idempotent.
        """
        if observer not in self._observers:
            self._observers = self._observers + (observer,)
            self._rebuild_sinks()

    def remove_observer(self, observer) -> None:
        """Detach a previously attached write observer (idempotent)."""
        if observer in self._observers:
            self._observers = tuple(
                o for o in self._observers if o is not observer
            )
            self._rebuild_sinks()

    def explicit_classes_of(self, oid_like: OidLike) -> FrozenSet[Atom]:
        """Explicit instance-of memberships only (no implicit classes)."""
        return frozenset(self._memberships.get(as_oid(oid_like), set()))

    def _bump_schema(self) -> None:
        self.schema_generation += 1
        self._arrow_kinds.clear()
        self.statistics.note_schema_change()

    # ------------------------------------------------------------------
    # schema: classes and signatures
    # ------------------------------------------------------------------

    def declare_class(
        self, name: ClassLike, parents: Iterable[ClassLike] = ()
    ) -> Atom:
        """Declare a class (idempotent), returning its class atom."""
        cls = _atom(name)
        with self._history.lock:
            self._history.advance()
            self._history.record_schema()
            self.hierarchy.add_class(cls, [_atom(p) for p in parents])
            self._known_add(cls)
            self._bump_schema()
            for sink in self._sinks:
                sink.note_class(
                    cls,
                    [
                        sup
                        for sup in self.hierarchy.direct_superclasses(cls)
                        if sup != OBJECT_CLASS
                    ],
                )
        return cls

    def declare_signature(
        self,
        cls: ClassLike,
        method: ClassLike,
        result: ClassLike,
        args: Sequence[ClassLike] = (),
        set_valued: bool = False,
    ) -> Signature:
        """Attach ``method : args => result`` to *cls* (paper §2 "Types").

        Declaring a signature also places the method atom in the
        method-object subdomain of the catalogue, which is what makes it
        visible to schema-browsing queries.
        """
        cls_atom = _atom(cls)
        method_atom = _atom(method)
        result_atom = _atom(result)
        with self._history.lock:
            self.hierarchy.require(cls_atom)
            self.hierarchy.require(result_atom)
            arg_atoms = tuple(_atom(a) for a in args)
            for arg in arg_atoms:
                self.hierarchy.require(arg)
            signature = Signature(
                method_atom,
                TypeExpr(cls_atom, arg_atoms, result_atom, set_valued),
            )
            self._history.advance()
            self._history.record_schema()
            per_class = self._signatures.setdefault(cls_atom, {})
            existing = per_class.setdefault(method_atom, [])
            if signature not in existing:
                existing.append(signature)
            self.catalogue.register_method(method_atom)
            self._known_add(method_atom)
            self._bump_schema()
            for sink in self._sinks:
                sink.note_signature(
                    cls_atom, method_atom, result_atom, arg_atoms, set_valued
                )
        return signature

    def declared_signatures(
        self, cls: ClassLike, method: Optional[ClassLike] = None
    ) -> List[Signature]:
        """Signatures declared *directly* on *cls* (no inheritance)."""
        per_class = self._signatures.get(_atom(cls), {})
        if method is None:
            return [s for sigs in per_class.values() for s in sigs]
        return list(per_class.get(_atom(method), []))

    def signatures_of(
        self, cls: ClassLike, method: Optional[ClassLike] = None
    ) -> List[Signature]:
        """Signatures visible on *cls* under structural inheritance (§6.1).

        "The set of signatures of M in C' consists of all signatures in the
        ancestors of C' and all signatures in the new definitions of M in
        C'" — types are always inherited and never overwritten.
        """
        cls_atom = _atom(cls)
        self.hierarchy.require(cls_atom)
        result: List[Signature] = []
        for ancestor in sorted(
            self.hierarchy.superclasses(cls_atom, strict=False),
            key=lambda a: a.name,
        ):
            result.extend(self.declared_signatures(ancestor, method))
        return result

    def all_type_exprs(self, method: ClassLike) -> List[TypeExpr]:
        """Every declared type expression of *method*, across all classes."""
        method_atom = _atom(method)
        found: List[TypeExpr] = []
        for per_class in self._signatures.values():
            for signature in per_class.get(method_atom, []):
                if signature.type_expr not in found:
                    found.append(signature.type_expr)
        return found

    def method_names(self) -> FrozenSet[Atom]:
        """All method-objects known to the catalogue."""
        return self.catalogue.methods()

    # ------------------------------------------------------------------
    # instances
    # ------------------------------------------------------------------

    def create_object(
        self, oid_like: OidLike, classes: Iterable[ClassLike] = ()
    ) -> Oid:
        """Register an object and its direct class memberships."""
        obj = as_oid(oid_like)
        with self._history.lock:
            self.catalogue.check_individual(obj)
            self._history.advance()
            is_new = obj not in self._records
            self._records.setdefault(obj, ObjectRecord(obj))
            self._known_add(obj)
            if is_new:
                for sink in self._sinks:
                    sink.note_object(obj)
            for cls in classes:
                self.add_instance(obj, cls)
        return obj

    def add_instance(self, oid_like: OidLike, cls: ClassLike) -> None:
        obj = as_oid(oid_like)
        cls_atom = _atom(cls)
        with self._history.lock:
            self.hierarchy.require(cls_atom)
            self.catalogue.check_individual(obj)
            self._history.advance()
            memberships = self._memberships.setdefault(obj, set())
            if cls_atom not in memberships:
                self._history.record_membership(obj, cls_atom, False)
                memberships.add(cls_atom)
                self._direct_extents.setdefault(cls_atom, set()).add(obj)
                self.statistics.note_membership(cls_atom, +1)
                for sink in self._sinks:
                    sink.note_membership(cls_atom, obj, True)
            self._records.setdefault(obj, ObjectRecord(obj))
            self._known_add(obj)

    def remove_instance(self, oid_like: OidLike, cls: ClassLike) -> None:
        obj = as_oid(oid_like)
        cls_atom = _atom(cls)
        with self._history.lock:
            self._history.advance()
            memberships = self._memberships.get(obj, set())
            if cls_atom in memberships:
                self._history.record_membership(obj, cls_atom, True)
                memberships.discard(cls_atom)
                self._direct_extents.get(cls_atom, set()).discard(obj)
                self.statistics.note_membership(cls_atom, -1)
                for sink in self._sinks:
                    sink.note_membership(cls_atom, obj, False)

    def purge_object(self, oid_like: OidLike) -> None:
        """Remove an object entirely: record, memberships, and extents.

        Used by view refresh (§4.2) to drop stale view objects before
        re-materializing.  References to the purged oid stored in other
        objects' cells are left untouched (the paper has no referential-
        integrity maintenance).
        """
        obj = as_oid(oid_like)
        with self._history.lock:
            self._history.advance()
            record = self._records.get(obj)
            cells = list(record.entries()) if record is not None else []
            memberships = set(self._memberships.get(obj, set()))
            # Chain every pre-image before the first live mutation so a
            # concurrent pinned reader never sees a half-purged object.
            for key, cell in cells:
                self._history.record_cell(obj, key, cell)
            for cls in memberships:
                self._history.record_membership(obj, cls, True)
            if obj in self._known:
                self._history.record_known(obj, True)
            self._records.pop(obj, None)
            for (method, args), cell in cells:
                self.statistics.note_write(
                    obj, method, args, cell.as_set(), frozenset()
                )
            self._memberships.pop(obj, None)
            for cls in memberships:
                self._direct_extents.get(cls, set()).discard(obj)
                self.statistics.note_membership(cls, -1)
            self._known.discard(obj)
            self._indexes.note_purge(obj)
            for sink in self._sinks:
                sink.note_purge(obj, memberships, cells)

    def direct_classes_of(self, oid_like: OidLike) -> FrozenSet[Atom]:
        """Explicit instance-of memberships plus implicit literal classes."""
        obj = as_oid(oid_like)
        explicit = frozenset(self._memberships.get(obj, set()))
        return explicit | self.catalogue.implicit_classes(obj)

    def classes_of(self, oid_like: OidLike) -> FrozenSet[Atom]:
        """All classes *obj* belongs to, including inherited memberships.

        If C is a subclass of C', instances of C belong to C' too (§2).
        """
        direct = self.direct_classes_of(oid_like)
        closure: Set[Atom] = set(direct)
        for cls in direct:
            if cls in self.hierarchy:
                closure |= self.hierarchy.superclasses(cls)
        return frozenset(closure)

    def is_instance(self, oid_like: OidLike, cls: ClassLike) -> bool:
        return _atom(cls) in self.classes_of(oid_like)

    def extent(
        self, cls: ClassLike, direct: bool = False
    ) -> FrozenSet[Oid]:
        """Instances of *cls* (by default including subclass instances).

        Built-in literal classes enumerate the literals the database has
        actually seen — the active domain, which is what the naive
        semantics of §3.4 ranges over.
        """
        cls_atom = _atom(cls)
        self.hierarchy.require(cls_atom)
        members: Set[Oid] = set(self._direct_extents.get(cls_atom, set()))
        if not direct:
            for sub in self.hierarchy.subclasses(cls_atom):
                members |= self._direct_extents.get(sub, set())
        for obj in self._known:
            implicit = self.catalogue.implicit_classes(obj)
            if cls_atom in implicit:
                members.add(obj)
            elif not direct and any(
                self.hierarchy.is_subclass(c, cls_atom) for c in implicit
            ):
                members.add(obj)
        return frozenset(members)

    # ------------------------------------------------------------------
    # universes (for variable instantiation)
    # ------------------------------------------------------------------

    def known_objects(self) -> FrozenSet[Oid]:
        """Every oid the database has seen anywhere."""
        return frozenset(self._known)

    def individual_universe(self) -> FrozenSet[Oid]:
        """The range of individual variables: all known non-class oids."""
        return frozenset(
            obj for obj in self._known if not self.catalogue.is_class(obj)
        )

    def class_universe(self) -> FrozenSet[Atom]:
        """The range of class variables (``#X``)."""
        return frozenset(self.hierarchy.classes())

    def method_universe(self) -> FrozenSet[Atom]:
        """The range of method variables (``"Y``)."""
        names: Set[Atom] = set(self.catalogue.methods())
        for record in self._records.values():
            names.update(record.defined_methods())
        for _cls, method in self._implementations:
            names.add(method)
        return frozenset(names)

    # ------------------------------------------------------------------
    # explicit data cells
    # ------------------------------------------------------------------

    def _record(self, oid_like: OidLike) -> ObjectRecord:
        obj = as_oid(oid_like)
        self._known_add(obj)
        record = self._records.get(obj)
        if record is None:
            record = ObjectRecord(obj)
            self._records[obj] = record
        return record

    def _known_add(self, obj: Oid) -> None:
        """Add *obj* to the known set, chaining the pre-image when pinned.

        Mutator-side counterpart of :meth:`_note_values`: only an actual
        change records a chain entry.
        """
        if obj not in self._known:
            self._history.record_known(obj, False)
            self._known.add(obj)

    def _note_values(self, values: Iterable[Oid]) -> None:
        """Read-path oid discovery (method invocation results).

        Deliberately unchained and ticket-free: invoking a computed
        method during a query must not advance the version or perturb
        snapshot chains.  Snapshot views override this to keep their
        discoveries view-local.
        """
        for value in values:
            self._known.add(value)
            if isinstance(value, FuncOid):
                self._known.update(value.args)

    def _note_values_mutating(self, values: Iterable[Oid]) -> None:
        """Like :meth:`_note_values` but chained — for mutator call sites."""
        for value in values:
            self._known_add(value)
            if isinstance(value, FuncOid):
                for arg in value.args:
                    self._known_add(arg)

    def _check_arrow(
        self, owner: Oid, method: Atom, set_valued: bool
    ) -> None:
        """Reject storing a value whose arrow kind contradicts the schema.

        The declared kinds visible from a membership set are pure schema,
        so they are memoized per ``(method, direct classes)`` — the hot
        path of bulk loads — and only the (rare) contradicting write pays
        the full signature walk to produce its exact error message.
        """
        classes = self.direct_classes_of(owner)
        key = (method, classes)
        kinds = self._arrow_kinds.get(key)
        if kinds is None:
            kinds = frozenset(
                signature.set_valued
                for cls in classes
                if cls in self.hierarchy
                for signature in self.signatures_of(cls, method)
            )
            self._arrow_kinds[key] = kinds
        if kinds <= {set_valued}:
            return
        for cls in classes:
            if cls not in self.hierarchy:
                continue
            for signature in self.signatures_of(cls, method):
                if signature.set_valued != set_valued:
                    kind = "set-valued" if signature.set_valued else "scalar"
                    raise SignatureError(
                        f"{method} is declared {kind} for {cls}; the stored "
                        f"value on {owner} disagrees"
                    )

    def _check_value_class(self, owner: Oid, method: Atom, value: Oid) -> None:
        """Optional conservative check: the value fits a declared result.

        Active only with ``validate_values=True`` and only when at least
        one signature for *method* is visible on the owner's classes.
        """
        if not self.validate_values:
            return
        results = [
            signature.result
            for cls in self.direct_classes_of(owner)
            if cls in self.hierarchy
            for signature in self.signatures_of(cls, method)
        ]
        if not results:
            return
        if not any(self.is_instance(value, result) for result in results):
            from repro.errors import ValueTypeError

            expected = ", ".join(sorted({r.name for r in results}))
            raise ValueTypeError(
                f"{value} is not an instance of any declared result class "
                f"of {method} ({expected})"
            )

    def set_attr(
        self,
        owner: OidLike,
        method: ClassLike,
        value: OidLike,
        args: Sequence[OidLike] = (),
    ) -> None:
        """Store a scalar attribute/method value."""
        owner_oid = as_oid(owner)
        method_atom = _atom(method)
        value_oid = as_oid(value)
        arg_oids = tuple(as_oid(a) for a in args)
        with self._history.lock:
            self._check_arrow(owner_oid, method_atom, set_valued=False)
            self._check_value_class(owner_oid, method_atom, value_oid)
            self._history.advance()
            record = self._record(owner_oid)
            old_cell = record.get(method_atom, arg_oids)
            old_values = old_cell.as_set() if old_cell else frozenset()
            self._history.record_cell(
                owner_oid, (method_atom, arg_oids), old_cell
            )
            record.set_scalar(method_atom, value_oid, arg_oids)
            new_values = frozenset({value_oid})
            self._indexes.note_write(
                owner_oid, method_atom, arg_oids, old_values, new_values
            )
            self.statistics.note_write(
                owner_oid, method_atom, arg_oids, old_values, new_values
            )
            for sink in self._sinks:
                sink.note_cell(
                    owner_oid, method_atom, arg_oids, old_values, new_values,
                    scalar=True,
                )
            self._known_add(method_atom)
            self._note_values_mutating((value_oid, *arg_oids))

    def set_attr_set(
        self,
        owner: OidLike,
        method: ClassLike,
        values: Iterable[OidLike],
        args: Sequence[OidLike] = (),
    ) -> None:
        """Store (replace) a set-valued attribute/method value."""
        owner_oid = as_oid(owner)
        method_atom = _atom(method)
        value_oids = frozenset(as_oid(v) for v in values)
        arg_oids = tuple(as_oid(a) for a in args)
        with self._history.lock:
            self._check_arrow(owner_oid, method_atom, set_valued=True)
            for value_oid in value_oids:
                self._check_value_class(owner_oid, method_atom, value_oid)
            self._history.advance()
            record = self._record(owner_oid)
            old_cell = record.get(method_atom, arg_oids)
            old_values = old_cell.as_set() if old_cell else frozenset()
            self._history.record_cell(
                owner_oid, (method_atom, arg_oids), old_cell
            )
            record.set_set(method_atom, value_oids, arg_oids)
            self._indexes.note_write(
                owner_oid, method_atom, arg_oids, old_values, value_oids
            )
            self.statistics.note_write(
                owner_oid, method_atom, arg_oids, old_values, value_oids
            )
            for sink in self._sinks:
                sink.note_cell(
                    owner_oid, method_atom, arg_oids, old_values, value_oids,
                    scalar=False,
                )
            self._known_add(method_atom)
            self._note_values_mutating((*value_oids, *arg_oids))

    def add_to_set(
        self,
        owner: OidLike,
        method: ClassLike,
        member: OidLike,
        args: Sequence[OidLike] = (),
    ) -> None:
        owner_oid = as_oid(owner)
        method_atom = _atom(method)
        member_oid = as_oid(member)
        arg_oids = tuple(as_oid(a) for a in args)
        with self._history.lock:
            self._check_arrow(owner_oid, method_atom, set_valued=True)
            self._check_value_class(owner_oid, method_atom, member_oid)
            self._history.advance()
            record = self._record(owner_oid)
            old_cell = record.get(method_atom, arg_oids)
            old_values = old_cell.as_set() if old_cell else frozenset()
            self._history.record_cell(
                owner_oid, (method_atom, arg_oids), old_cell
            )
            record.add_to_set(method_atom, member_oid, arg_oids)
            self._indexes.note_write(
                owner_oid, method_atom, arg_oids, frozenset(),
                frozenset({member_oid}),
            )
            self.statistics.note_write(
                owner_oid, method_atom, arg_oids, old_values,
                old_values | {member_oid},
            )
            for sink in self._sinks:
                sink.note_cell(
                    owner_oid, method_atom, arg_oids, old_values,
                    old_values | {member_oid}, scalar=False,
                )
            self._known_add(method_atom)
            self._note_values_mutating((member_oid, *arg_oids))

    def unset_attr(
        self,
        owner: OidLike,
        method: ClassLike,
        args: Sequence[OidLike] = (),
    ) -> None:
        obj = as_oid(owner)
        with self._history.lock:
            self._history.advance()
            record = self._records.get(obj)
            if record is not None:
                method_atom = _atom(method)
                arg_oids = tuple(as_oid(a) for a in args)
                old_cell = record.get(method_atom, arg_oids)
                old_values = old_cell.as_set() if old_cell else frozenset()
                self._history.record_cell(
                    obj, (method_atom, arg_oids), old_cell
                )
                record.unset(method_atom, arg_oids)
                self._indexes.note_write(
                    obj, method_atom, arg_oids, old_values, frozenset()
                )
                self.statistics.note_write(
                    obj, method_atom, arg_oids, old_values, frozenset()
                )
                for sink in self._sinks:
                    sink.note_cell(
                        obj, method_atom, arg_oids, old_values, frozenset(),
                        scalar=False, present=False,
                    )

    def explicit_cell(
        self,
        owner: OidLike,
        method: ClassLike,
        args: Sequence[OidLike] = (),
    ) -> Optional[Cell]:
        record = self._records.get(as_oid(owner))
        if record is None:
            return None
        return record.get(_atom(method), tuple(as_oid(a) for a in args))

    # ------------------------------------------------------------------
    # implementations
    # ------------------------------------------------------------------

    def define_method(
        self, cls: ClassLike, impl: MethodImplementation
    ) -> None:
        """Register a method implementation in the scope of *cls*."""
        cls_atom = _atom(cls)
        with self._history.lock:
            self.hierarchy.require(cls_atom)
            name = getattr(impl, "name", None)
            if not isinstance(name, Atom):
                raise SchemaError(
                    "method implementation must carry a name Atom"
                )
            self._history.advance()
            self._history.record_schema()
            self._implementations[(cls_atom, name)] = impl
            self.catalogue.register_method(name)
            self._known_add(name)
            self._bump_schema()

    def implementation_classes(self, method: Atom) -> List[Atom]:
        return sorted(
            (cls for (cls, name) in self._implementations if name == method),
            key=lambda a: a.name,
        )

    def resolve_inheritance(
        self, cls: ClassLike, method: ClassLike, use_class: ClassLike
    ) -> None:
        """Declare which superclass's definition *cls* inherits (§6.1)."""
        with self._history.lock:
            self._history.advance()
            self._history.record_schema()
            self.resolver.declare_resolution(
                _atom(cls), _atom(method), _atom(use_class)
            )
            self._bump_schema()
            for sink in self._sinks:
                sink.note_resolution(
                    _atom(cls), _atom(method), _atom(use_class)
                )

    # ------------------------------------------------------------------
    # invocation: the heart of the data model
    # ------------------------------------------------------------------

    def invoke(
        self,
        owner: OidLike,
        method: ClassLike,
        args: Sequence[OidLike] = (),
    ) -> FrozenSet[Oid]:
        """Resolve a method invocation to its value set.

        Returns the set of result oids: a singleton for a defined scalar
        method, empty when undefined.  Resolution order: explicit cell,
        inherited default value, computed implementation.
        """
        return self.invoke_kinded(owner, method, args)[0]

    def invoke_kinded(
        self,
        owner: OidLike,
        method: ClassLike,
        args: Sequence[OidLike] = (),
    ) -> Tuple[FrozenSet[Oid], bool]:
        """Like :meth:`invoke`, also reporting whether the hop is set-valued.

        The flag distinguishes a scalar result from a set-valued result
        that happens to be a singleton — object-creating queries need the
        difference to decide between scalar and set attribute cells (§4.1).
        """
        owner_oid = as_oid(owner)
        method_atom = _atom(method)
        arg_oids = tuple(as_oid(a) for a in args)

        cell = self.explicit_cell(owner_oid, method_atom, arg_oids)
        if cell is not None:
            return cell.as_set(), cell.set_valued

        member_classes = self.direct_classes_of(owner_oid)

        # Inherited default value (footnote 5: all attributes are default
        # attributes in the paper's scope).  Class-objects inherit from
        # their own superclasses.
        if self.catalogue.is_class(owner_oid):
            member_classes = frozenset({owner_oid})  # type: ignore[arg-type]
        defining = [
            cls
            for cls in self.hierarchy.classes()
            if self._has_cell(cls, method_atom, arg_oids)
        ]
        chosen = self.resolver.select(
            str(owner_oid), member_classes, method_atom, defining
        )
        if chosen is not None and chosen != owner_oid:
            cell = self.explicit_cell(chosen, method_atom, arg_oids)
            if cell is not None:
                return cell.as_set(), cell.set_valued

        # Computed implementation with behavioral inheritance + overriding.
        impl_classes = self.implementation_classes(method_atom)
        if impl_classes:
            chosen_impl = self.resolver.select(
                str(owner_oid), member_classes, method_atom, impl_classes
            )
            if chosen_impl is not None:
                impl = self._implementations[(chosen_impl, method_atom)]
                if impl.arity != len(arg_oids):
                    raise ArityError(
                        f"method {method_atom} expects {impl.arity} "
                        f"argument(s), got {len(arg_oids)}"
                    )
                result = impl.invoke(self, owner_oid, arg_oids)
                self._note_values(result)
                return result, impl.set_valued
        return frozenset(), False

    def _has_cell(
        self, cls: Atom, method: Atom, args: Tuple[Oid, ...]
    ) -> bool:
        record = self._records.get(cls)
        return record is not None and record.get(method, args) is not None

    def invoke_scalar(
        self,
        owner: OidLike,
        method: ClassLike,
        args: Sequence[OidLike] = (),
    ) -> Optional[Oid]:
        """Invoke a scalar method; None when undefined."""
        result = self.invoke(owner, method, args)
        if not result:
            return None
        if len(result) > 1:
            raise ArityError(
                f"method {method} produced {len(result)} values on "
                f"{owner}; expected a scalar"
            )
        return next(iter(result))

    def methods_defined_on(self, owner: OidLike) -> FrozenSet[Atom]:
        """Method names with some (possibly inherited/computed) definition.

        This is the candidate set a method variable ``"Y`` ranges over when
        it appears in ``X."Y`` — an over-approximation is fine because
        invocation still decides definedness, but we keep it tight:
        explicit cells on the object, default cells on reachable classes,
        and implementations on reachable classes.
        """
        owner_oid = as_oid(owner)
        names: Set[Atom] = set()
        record = self._records.get(owner_oid)
        if record is not None:
            names.update(record.defined_methods())
        if self.catalogue.is_class(owner_oid):
            reachable = self.hierarchy.superclasses(
                owner_oid, strict=False  # type: ignore[arg-type]
            )
        else:
            reachable = self.classes_of(owner_oid)
        for cls in reachable:
            cls_record = self._records.get(cls)
            if cls_record is not None:
                names.update(cls_record.defined_methods())
        for (cls, name) in self._implementations:
            if cls in reachable:
                names.add(name)
        return frozenset(names)

    # ------------------------------------------------------------------
    # inverted indexes ([BERT89]-style)
    # ------------------------------------------------------------------

    def enable_index(self, method: ClassLike) -> None:
        """Build and maintain an inverted value→owners index for *method*."""
        method_atom = _atom(method)
        with self._history.lock:
            self._history.advance()
            self._history.record_schema()
            self._indexes.enable(method_atom, self)
            self._bump_schema()
            for sink in self._sinks:
                sink.note_index(method_atom, True)

    def disable_index(self, method: ClassLike) -> None:
        method_atom = _atom(method)
        with self._history.lock:
            self._history.advance()
            self._history.record_schema()
            self._indexes.disable(method_atom)
            self._bump_schema()
            for sink in self._sinks:
                sink.note_index(method_atom, False)

    def is_indexed(self, method: ClassLike) -> bool:
        return self._indexes.is_indexed(_atom(method))

    def indexed_methods(self) -> FrozenSet[Atom]:
        """The methods currently carrying an inverted index."""
        return self._indexes.indexed_methods()

    def index_stats(self) -> Dict[str, int]:
        """Cumulative index hit/miss counters (observability)."""
        return {
            "hits": self._indexes.hits,
            "misses": self._indexes.misses,
        }

    def method_statistics(self, method: ClassLike) -> MethodStats:
        """The statistics catalogue's counters for *method*."""
        return self.statistics.method_stats(_atom(method))

    def extent_estimate(self, cls: ClassLike) -> int:
        """Estimated ``|extent(cls)|`` from the statistics catalogue.

        Sums direct membership counts over the subclass closure; implicit
        literal-class members are invisible to the catalogue, so this is a
        lower bound — fine for ranking plans, unsound for execution.
        """
        cls_atom = _atom(cls)
        self.hierarchy.require(cls_atom)
        total = self.statistics.direct_extent_count(cls_atom)
        for sub in self.hierarchy.subclasses(cls_atom):
            total += self.statistics.direct_extent_count(sub)
        return total

    def reverse_lookup_sound(self, method: ClassLike) -> bool:
        """Would an inverted index answer reverse lookups exactly?

        The index covers explicitly stored cells only; if any class-level
        default cell or computed implementation exists for the method,
        objects may carry values with no own cell, and reverse lookups
        must fall back to forward evaluation.  (Independent of whether an
        index is currently enabled — the cost planner asks this before
        auto-enabling one.)
        """
        method_atom = _atom(method)
        if self.implementation_classes(method_atom):
            return False
        for cls in self.hierarchy.classes():
            record = self._records.get(cls)
            if record is None:
                continue
            if any(m == method_atom for m in record.defined_methods()):
                return False
        return True

    def index_is_complete_for(self, method: ClassLike) -> bool:
        """Can the index answer reverse lookups exactly for *method*?"""
        method_atom = _atom(method)
        return self._indexes.is_indexed(
            method_atom
        ) and self.reverse_lookup_sound(method_atom)

    def lookup_by_value(
        self,
        method: ClassLike,
        value: OidLike,
        args: Optional[Sequence[OidLike]] = None,
    ) -> Optional[FrozenSet[Oid]]:
        """Reverse lookup via the index; None when unavailable/incomplete."""
        method_atom = _atom(method)
        if not self.index_is_complete_for(method_atom):
            return None
        arg_oids = (
            tuple(as_oid(a) for a in args) if args is not None else None
        )
        return self._indexes.owners_of(method_atom, as_oid(value), arg_oids)

    # ------------------------------------------------------------------
    # relations (first-class, §2 "Relations")
    # ------------------------------------------------------------------

    def declare_relation(
        self, name: str, column_names: Sequence[str]
    ) -> StoredRelation:
        relation = StoredRelation(name, tuple(column_names))
        with self._history.lock:
            self._history.advance()
            self._history.record_schema()
            self._history.record_relation(name, self._relations.get(name))
            self._relations[name] = relation
            self._bump_schema()
            for sink in self._sinks:
                sink.note_relation(name, relation.column_names)
        return relation

    def relation(self, name: str) -> StoredRelation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownClassError(f"relation {name} is not declared")

    def relations(self) -> Dict[str, StoredRelation]:
        return dict(self._relations)

    def insert_tuple(self, name: str, row: Sequence[OidLike]) -> None:
        with self._history.lock:
            relation = self.relation(name)
            oids = tuple(as_oid(v) for v in row)
            self._history.advance()
            self._history.record_relation(name, relation)
            relation.insert(oids)
            self._note_values_mutating(oids)
            for sink in self._sinks:
                sink.note_tuple(name, oids)

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------

    def describe(self, oid_like: OidLike) -> str:
        """A human-readable dump of one object (debugging aid)."""
        obj = as_oid(oid_like)
        lines = [f"object {obj}"]
        classes = sorted(self.direct_classes_of(obj), key=lambda a: a.name)
        if classes:
            lines.append(
                "  instance-of: " + ", ".join(str(c) for c in classes)
            )
        record = self._records.get(obj)
        if record is not None:
            for (method, args), cell in sorted(
                record.entries(), key=lambda item: str(item[0])
            ):
                arg_str = (
                    "@" + ",".join(str(a) for a in args) if args else ""
                )
                if isinstance(cell, ScalarCell):
                    lines.append(f"  {method}{arg_str} -> {cell.value}")
                else:
                    members = ", ".join(
                        sorted(str(v) for v in cell.values)
                    )
                    lines.append(f"  {method}{arg_str} ->> {{{members}}}")
        return "\n".join(lines)

    def iter_records(self) -> Iterator[ObjectRecord]:
        return iter(self._records.values())
