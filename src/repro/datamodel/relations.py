"""First-class relations on a par with objects (paper §2 "Relations").

"There are situations when the use of relations on a par with objects leads
to more natural representation ... so we prefer to have relations as
first-class language constructs."  A stored relation is a named set of
tuples of oids; query results (:mod:`repro.xsql.result`) share this shape,
which is what makes ``UNION``/``MINUS`` between stored and computed
relations natural.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import RelationalError
from repro.oid import Oid, term_sort_key

__all__ = ["StoredRelation"]


class StoredRelation:
    """A named relation: a set of equal-length tuples of oids."""

    def __init__(self, name: str, column_names: Tuple[str, ...]) -> None:
        if not column_names:
            raise RelationalError(f"relation {name} needs at least one column")
        if len(set(column_names)) != len(column_names):
            raise RelationalError(f"relation {name} has duplicate columns")
        self.name = name
        self.column_names = column_names
        self._rows: Set[Tuple[Oid, ...]] = set()

    @property
    def arity(self) -> int:
        return len(self.column_names)

    def insert(self, row: Tuple[Oid, ...]) -> None:
        if len(row) != self.arity:
            raise RelationalError(
                f"relation {self.name} has arity {self.arity}; row has "
                f"{len(row)} values"
            )
        self._rows.add(row)

    def delete(self, row: Tuple[Oid, ...]) -> None:
        self._rows.discard(row)

    def rows(self) -> FrozenSet[Tuple[Oid, ...]]:
        return frozenset(self._rows)

    def sorted_rows(self) -> List[Tuple[Oid, ...]]:
        return sorted(
            self._rows, key=lambda row: tuple(term_sort_key(v) for v in row)
        )

    def column(self, name: str) -> FrozenSet[Oid]:
        try:
            index = self.column_names.index(name)
        except ValueError:
            raise RelationalError(
                f"relation {self.name} has no column {name!r}"
            )
        return frozenset(row[index] for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Oid, ...]]:
        return iter(self.sorted_rows())

    def __contains__(self, row: Iterable[Oid]) -> bool:
        return tuple(row) in self._rows
