"""The object-oriented data model substrate (paper §2).

This subpackage implements everything the paper's data-model review
describes: the acyclic IS-A class hierarchy, instance-of membership,
signatures with scalar/set-valued methods and structural inheritance,
tuple-objects with scalar and set-valued attribute cells, behavioral
inheritance of default values and method implementations (including
Meyer-style explicit resolution of multiple-inheritance conflicts), the
system catalogue realized as ordinary classes, and first-class relations.

The central facade is :class:`repro.datamodel.store.ObjectStore`.
"""

from repro.datamodel.hierarchy import ClassHierarchy
from repro.datamodel.signatures import Signature, TypeExpr
from repro.datamodel.store import ObjectStore
from repro.datamodel.methods import PythonMethod
from repro.datamodel.relations import StoredRelation
from repro.datamodel.serialize import load_store, save_store

__all__ = [
    "ClassHierarchy",
    "Signature",
    "TypeExpr",
    "ObjectStore",
    "PythonMethod",
    "StoredRelation",
    "save_store",
    "load_store",
]
