"""MVCC versions: tickets, copy-on-write pre-image chains, snapshot views.

The generation counters the engine always carried — ``schema_generation``
for DDL, ``statistics.generation`` for data drift — are most of an MVCC
version stamp.  This module reifies them into one first-class
:class:`Version` and builds snapshot isolation on top:

* every mutation of an :class:`~repro.datamodel.store.ObjectStore`
  advances a monotone **ticket** under the store's write lock;
* while at least one snapshot is **pinned**, each mutator records the
  **pre-image** of whatever it is about to overwrite into a per-key
  chain ``[(ticket, pre), ...]`` *before* touching the live structure;
* a :class:`StoreView` pinned at ticket *s* reads the live structure
  first and then consults the chain — the smallest entry with
  ``ticket > s`` holds exactly the value at *s*, and the ordering
  protocol (writers chain-then-mutate, readers live-then-chain, chain
  wins) makes every interleaving consistent without reader locks;
* releasing the last pin drops all chains in O(1); with pins remaining,
  entries at or below the oldest pin are swept (lists are swapped, never
  mutated in place, so concurrent readers keep a consistent view).

Recording costs nothing while no snapshot is pinned, and a *skip-append*
rule bounds chain growth while one is: a new pre-image is recorded only
if no existing entry already covers every pin (i.e. unless the chain's
last ticket exceeds the newest pin), so each key gains at most one entry
per pin era no matter how often it is rewritten.

Writers never block pinned readers: reads take no lock at all.  They
rely on CPython-atomic snapshots of live containers (``dict.copy``,
``set(...)``, ``list(d.items())`` are single C calls under the GIL)
followed by chain overlays.  Acquiring a *new* pin does synchronize with
the write lock, so pins always align with mutator boundaries.

Schema DDL concurrent with *active* readers is best-effort: a pinned
reader resolves its schema through a pre-DDL :class:`SchemaImage`
(captured into the chain by the mutator), but a reader racing the DDL
instant itself may observe the live hierarchy mid-edit.  Sequential
DDL-then-pin and data-plane concurrency are fully consistent; the
concurrent differential fuzzer (:mod:`repro.difftest.concurrent`)
therefore drives data-plane writers against snapshot readers.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from dataclasses import dataclass
from operator import itemgetter
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.datamodel.indexes import AttributeIndexes
from repro.datamodel.objects import (
    Cell,
    CellKey,
    ObjectRecord,
    ScalarCell,
    SetCell,
)
from repro.datamodel.store import ObjectStore, OidLike, _atom
from repro.errors import (
    RelationalError,
    SnapshotReadOnlyError,
    UnknownClassError,
)
from repro.oid import Atom, FuncOid, Oid, oid as as_oid, term_sort_key

__all__ = [
    "Version",
    "SnapshotPin",
    "VersionHistory",
    "SchemaImage",
    "FrozenStatistics",
    "FrozenRelation",
    "StoreView",
]


@dataclass(frozen=True)
class Version:
    """One point in a store's mutation history.

    ``ticket`` totally orders committed mutations; ``schema`` and
    ``data`` are the component counters consumers compare to decide how
    much of a cached artifact survives: compiled plans care about
    :meth:`same_schema`, costed plans about :meth:`same_data`, and path
    caches about full equality (the ticket also moves on writes the
    component counters cannot see, such as relation tuple inserts).
    """

    ticket: int
    schema: int
    data: int

    def same_schema(self, other: "Version") -> bool:
        """No DDL separates the two versions."""
        return self.schema == other.schema

    def same_data(self, other: "Version") -> bool:
        """No statistics-visible data drift separates the two versions."""
        return self.data == other.data

    def __str__(self) -> str:
        return f"v{self.ticket}(schema={self.schema}, data={self.data})"


#: One pre-image chain entry: the mutation ticket and the value that was
#: current immediately *before* that mutation.
_Entry = Tuple[int, Any]
_entry_ticket = itemgetter(0)


def _resolve(chain: Sequence[_Entry], ticket: int) -> Tuple[bool, Any]:
    """The pre-image governing *ticket*, if any chain entry applies.

    Entries are ascending by ticket; the first entry whose ticket
    exceeds *ticket* recorded the state as of *ticket*.
    """
    idx = bisect_right(chain, ticket, key=_entry_ticket)
    if idx < len(chain):
        return True, chain[idx][1]
    return False, None


@dataclass
class SchemaImage:
    """A full pre-DDL copy of the store's schema-shaped state."""

    hierarchy: Any
    catalogue: Any
    resolver: Any
    signatures: Dict[Atom, Dict[Atom, List]]
    implementations: Dict[Tuple[Atom, Atom], Any]
    validate_values: bool


def _capture_schema(store: ObjectStore) -> SchemaImage:
    hierarchy = store.hierarchy.clone()
    return SchemaImage(
        hierarchy=hierarchy,
        catalogue=store.catalogue.clone(hierarchy),
        resolver=store.resolver.clone(hierarchy),
        signatures={
            cls: {method: list(sigs) for method, sigs in per.items()}
            for cls, per in store._signatures.items()
        },
        implementations=dict(store._implementations),
        validate_values=store.validate_values,
    )


class SnapshotPin:
    """A refcounted pin on one committed version (context manager)."""

    __slots__ = ("history", "version", "_released")

    def __init__(self, history: "VersionHistory", version: Version) -> None:
        self.history = history
        self.version = version
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def release(self) -> None:
        """Drop the pin (idempotent); may trigger chain GC."""
        if not self._released:
            self._released = True
            self.history._unpin(self.version.ticket)

    def __enter__(self) -> "SnapshotPin":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else "pinned"
        return f"SnapshotPin({self.version}, {state})"


class VersionHistory:
    """Per-store MVCC bookkeeping: ticket, pins, and pre-image chains.

    All writes happen under :attr:`lock` (an :class:`~threading.RLock`,
    because mutators nest — ``create_object`` calls ``add_instance``).
    Reads never take it.
    """

    def __init__(self, store: ObjectStore) -> None:
        self._store = store
        self.lock = threading.RLock()
        #: Monotone mutation counter; advanced once per mutator call.
        self.ticket = 0
        #: pinned ticket -> refcount
        self._pins: Dict[int, int] = {}
        self._reset_chains()

    def _reset_chains(self) -> None:
        self._cell_chains: Dict[Oid, Dict[CellKey, List[_Entry]]] = {}
        self._membership_chains: Dict[Oid, Dict[Atom, List[_Entry]]] = {}
        #: class -> objects whose membership in it changed since the
        #: oldest pin (the extent-overlay index).
        self._membership_dirty: Dict[Atom, Set[Oid]] = {}
        self._known_chains: Dict[Oid, List[_Entry]] = {}
        self._relation_chains: Dict[str, List[_Entry]] = {}
        self._schema_chain: List[_Entry] = []

    # ------------------------------------------------------------------
    # versions and pins
    # ------------------------------------------------------------------

    def version_of(self, store: ObjectStore) -> Version:
        return Version(
            self.ticket, store.schema_generation, store.statistics.generation
        )

    def advance(self) -> int:
        """Next mutation ticket (callers hold :attr:`lock`)."""
        self.ticket += 1
        return self.ticket

    def restore(self, ticket: int) -> None:
        """Adopt a recovered ticket (checkpoint/WAL replay)."""
        with self.lock:
            self.ticket = max(self.ticket, ticket)

    def pin(self) -> SnapshotPin:
        """Pin the current committed version.

        Takes the write lock, so the pin aligns with a mutator boundary
        and captures a consistent (ticket, schema, data) triple.
        """
        with self.lock:
            ticket = self.ticket
            self._pins[ticket] = self._pins.get(ticket, 0) + 1
            version = self.version_of(self._store)
        return SnapshotPin(self, version)

    def _unpin(self, ticket: int) -> None:
        with self.lock:
            count = self._pins.get(ticket, 0)
            if count > 1:
                self._pins[ticket] = count - 1
                return
            self._pins.pop(ticket, None)
            self._gc()

    @property
    def recording(self) -> bool:
        """Are pre-images being chained (any snapshot pinned)?"""
        return bool(self._pins)

    # ------------------------------------------------------------------
    # pre-image recording (callers hold the lock and have advanced)
    # ------------------------------------------------------------------

    def _covered(self, chain: List[_Entry]) -> bool:
        """Skip-append: does the chain already serve every current pin?

        A pin at *s* needs the first entry with ``ticket > s``; if the
        chain's last entry exceeds the newest pin, every pin already has
        one, and recording another pre-image would be dead weight.
        """
        return bool(chain) and chain[-1][0] > max(self._pins)

    def record_cell(
        self, owner: Oid, key: CellKey, cell: Optional[Cell]
    ) -> None:
        if not self._pins:
            return
        per = self._cell_chains.setdefault(owner, {})
        chain = per.setdefault(key, [])
        if self._covered(chain):
            return
        pre = None if cell is None else (cell.as_set(), cell.set_valued)
        chain.append((self.ticket, pre))

    def record_membership(
        self, obj: Oid, cls: Atom, was_member: bool
    ) -> None:
        if not self._pins:
            return
        per = self._membership_chains.setdefault(obj, {})
        chain = per.setdefault(cls, [])
        if self._covered(chain):
            return
        chain.append((self.ticket, was_member))
        self._membership_dirty.setdefault(cls, set()).add(obj)

    def record_known(self, obj: Oid, was_known: bool) -> None:
        if not self._pins:
            return
        chain = self._known_chains.setdefault(obj, [])
        if self._covered(chain):
            return
        chain.append((self.ticket, was_known))

    def record_relation(self, name: str, relation) -> None:
        if not self._pins:
            return
        chain = self._relation_chains.setdefault(name, [])
        if self._covered(chain):
            return
        pre = (
            None
            if relation is None
            else (relation.column_names, relation.rows())
        )
        chain.append((self.ticket, pre))

    def record_schema(self) -> None:
        if not self._pins:
            return
        chain = self._schema_chain
        if self._covered(chain):
            return
        chain.append((self.ticket, _capture_schema(self._store)))

    # ------------------------------------------------------------------
    # garbage collection
    # ------------------------------------------------------------------

    def _gc(self) -> None:
        """Drop chain entries no remaining pin can reach.

        With no pins left everything resets in O(1).  Otherwise entries
        at or below the oldest pin are swept; surviving lists and dicts
        are rebuilt and swapped in whole, never mutated in place, so a
        reader holding a reference keeps a consistent (if stale) chain.
        """
        if not self._pins:
            self._reset_chains()
            return
        floor = min(self._pins)

        def sweep(chain: List[_Entry]) -> List[_Entry]:
            return [entry for entry in chain if entry[0] > floor]

        cells: Dict[Oid, Dict[CellKey, List[_Entry]]] = {}
        for owner, per in self._cell_chains.items():
            kept = {
                key: swept
                for key, chain in per.items()
                if (swept := sweep(chain))
            }
            if kept:
                cells[owner] = kept
        self._cell_chains = cells

        memberships: Dict[Oid, Dict[Atom, List[_Entry]]] = {}
        dirty: Dict[Atom, Set[Oid]] = {}
        for obj, per in self._membership_chains.items():
            kept = {
                cls: swept
                for cls, chain in per.items()
                if (swept := sweep(chain))
            }
            if kept:
                memberships[obj] = kept
                for cls in kept:
                    dirty.setdefault(cls, set()).add(obj)
        self._membership_chains = memberships
        self._membership_dirty = dirty

        self._known_chains = {
            obj: swept
            for obj, chain in self._known_chains.items()
            if (swept := sweep(chain))
        }
        self._relation_chains = {
            name: swept
            for name, chain in self._relation_chains.items()
            if (swept := sweep(chain))
        }
        self._schema_chain = sweep(self._schema_chain)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, int]:
        """Pin and copy-on-write chain statistics (REPL ``.snapshot``)."""
        with self.lock:
            cell_entries = sum(
                len(chain)
                for per in self._cell_chains.values()
                for chain in per.values()
            )
            membership_entries = sum(
                len(chain)
                for per in self._membership_chains.values()
                for chain in per.values()
            )
            return {
                "ticket": self.ticket,
                "pins": sum(self._pins.values()),
                "pinned_versions": len(self._pins),
                "oldest_pin": min(self._pins) if self._pins else -1,
                "cell_chain_entries": cell_entries,
                "membership_chain_entries": membership_entries,
                "known_chain_entries": sum(
                    len(c) for c in self._known_chains.values()
                ),
                "relation_chain_entries": sum(
                    len(c) for c in self._relation_chains.values()
                ),
                "schema_images": len(self._schema_chain),
            }


class FrozenStatistics:
    """Read-only statistics facade for a snapshot view.

    ``generation`` is pinned to the snapshot's data counter so version
    stamps computed against the view are stable; the *estimates* keep
    delegating to the live catalogue — statistics are approximations by
    design (they only rank plans, the executor never trusts them), so a
    slightly newer estimate is fine where a torn extent would not be.
    """

    def __init__(self, live, generation: int) -> None:
        self._live = live
        self.generation = generation

    def method_stats(self, method: Atom):
        return self._live.method_stats(method)

    def direct_extent_count(self, cls: Atom) -> int:
        return self._live.direct_extent_count(cls)

    def known_methods(self):
        return self._live.known_methods()

    def snapshot(self) -> Dict[str, Dict]:
        dump = dict(self._live.snapshot())
        dump["generation"] = self.generation
        return dump

    def _read_only(self) -> None:
        raise SnapshotReadOnlyError(
            "statistics of a snapshot view are read-only"
        )

    def note_write(self, *args, **kwargs) -> None:
        self._read_only()

    def note_membership(self, *args, **kwargs) -> None:
        self._read_only()

    def note_schema_change(self) -> None:
        self._read_only()


class FrozenRelation:
    """An immutable relation as of a pinned version.

    Mirrors the read surface of
    :class:`~repro.datamodel.relations.StoredRelation`; the write surface
    raises.
    """

    def __init__(
        self,
        name: str,
        column_names: Tuple[str, ...],
        rows: FrozenSet[Tuple[Oid, ...]],
    ) -> None:
        self.name = name
        self.column_names = column_names
        self._rows = rows

    @property
    def arity(self) -> int:
        return len(self.column_names)

    def insert(self, row) -> None:
        raise SnapshotReadOnlyError(
            f"relation {self.name} belongs to a read-only snapshot"
        )

    def delete(self, row) -> None:
        raise SnapshotReadOnlyError(
            f"relation {self.name} belongs to a read-only snapshot"
        )

    def rows(self) -> FrozenSet[Tuple[Oid, ...]]:
        return self._rows

    def sorted_rows(self) -> List[Tuple[Oid, ...]]:
        return sorted(
            self._rows, key=lambda row: tuple(term_sort_key(v) for v in row)
        )

    def column(self, name: str) -> FrozenSet[Oid]:
        try:
            index = self.column_names.index(name)
        except ValueError:
            raise RelationalError(
                f"relation {self.name} has no column {name!r}"
            )
        return frozenset(row[index] for row in self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Tuple[Oid, ...]]:
        return iter(self.sorted_rows())

    def __contains__(self, row: Iterable[Oid]) -> bool:
        return tuple(row) in self._rows


class StoreView(ObjectStore):
    """A read-only :class:`ObjectStore` pinned to one committed version.

    Reads reconstruct the state at the pin's ticket by overlaying the
    pre-image chains on CPython-atomic copies of the live structures
    (live first, chain second — chain wins); per-owner reconstructions
    are memoized, which is sound because a pinned state never changes.
    Every mutator raises :class:`SnapshotReadOnlyError`.

    Inverted indexes are disabled on views (``index_is_complete_for`` is
    always false), so reverse lookups fall back to the always-sound
    forward evaluation instead of consulting live index state.
    """

    def __init__(self, store: ObjectStore, pin: SnapshotPin) -> None:
        # Deliberately no super().__init__(): every piece of base state
        # is either overridden below or resolved through the pin.
        self._base = store
        self._pin = pin
        self._history = store._history
        self._ticket = pin.version.ticket
        self.schema_generation = pin.version.schema
        self.statistics = FrozenStatistics(store.statistics, pin.version.data)
        self._indexes = AttributeIndexes()
        self._arrow_kinds: Dict = {}
        self._journal = None
        self._observers: Tuple = ()
        self._sinks: Tuple = ()
        #: Oids discovered by computed-method invocation *through this
        #: view* — the view-local analogue of the live store's read-path
        #: ``_note_values`` discovery, so query execution over a snapshot
        #: behaves identically to serial execution at the pinned state.
        self._discovered: Set[Oid] = set()
        self._image: Optional[SchemaImage] = None
        self._cells_memo: Dict[Oid, Dict[CellKey, Cell]] = {}
        self._classes_memo: Dict[Oid, FrozenSet[Atom]] = {}
        self._relations_memo: Dict[str, Optional[FrozenRelation]] = {}
        self._known_memo: Optional[FrozenSet[Oid]] = None

    # ------------------------------------------------------------------
    # pin lifecycle
    # ------------------------------------------------------------------

    @property
    def version(self) -> Version:
        """The pinned version this view reads at."""
        return self._pin.version

    @property
    def pinned(self) -> bool:
        return not self._pin.released

    def release(self) -> None:
        """Release the underlying pin (idempotent).

        Chains the pin needed may be garbage-collected afterwards, so a
        released view must not be read again.
        """
        self._pin.release()

    def __enter__(self) -> "StoreView":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    # ------------------------------------------------------------------
    # schema resolution (pre-DDL image when one applies, else live)
    # ------------------------------------------------------------------

    def _schema_image(self) -> Optional[SchemaImage]:
        if self._image is None:
            hit, image = _resolve(self._history._schema_chain, self._ticket)
            if hit:
                self._image = image
        return self._image

    @property
    def hierarchy(self):
        image = self._schema_image()
        return image.hierarchy if image is not None else self._base.hierarchy

    @property
    def catalogue(self):
        image = self._schema_image()
        return image.catalogue if image is not None else self._base.catalogue

    @property
    def resolver(self):
        image = self._schema_image()
        return image.resolver if image is not None else self._base.resolver

    @property
    def validate_values(self) -> bool:
        image = self._schema_image()
        return (
            image.validate_values
            if image is not None
            else self._base.validate_values
        )

    @property
    def _signatures(self):
        image = self._schema_image()
        return (
            image.signatures if image is not None else self._base._signatures
        )

    @property
    def _implementations(self):
        image = self._schema_image()
        return (
            image.implementations
            if image is not None
            else self._base._implementations
        )

    # ------------------------------------------------------------------
    # data reads: live copy first, chain overlay second
    # ------------------------------------------------------------------

    def _cells_of(self, owner: Oid) -> Dict[CellKey, Cell]:
        cells = self._cells_memo.get(owner)
        if cells is None:
            record = self._base._records.get(owner)
            cells = dict(record.cells) if record is not None else {}
            per = self._history._cell_chains.get(owner)
            if per:
                for key, chain in list(per.items()):
                    hit, pre = _resolve(chain, self._ticket)
                    if not hit:
                        continue
                    if pre is None:
                        cells.pop(key, None)
                    else:
                        values, set_valued = pre
                        cells[key] = (
                            SetCell(values)
                            if set_valued
                            else ScalarCell(next(iter(values)))
                        )
            self._cells_memo[owner] = cells
        return cells

    def _snapshot_owners(self) -> Set[Oid]:
        owners = set(self._base._records)
        owners.update(self._history._cell_chains)
        return owners

    def explicit_cell(
        self,
        owner: OidLike,
        method,
        args: Sequence[OidLike] = (),
    ) -> Optional[Cell]:
        key = (_atom(method), tuple(as_oid(a) for a in args))
        return self._cells_of(as_oid(owner)).get(key)

    def _has_cell(
        self, cls: Atom, method: Atom, args: Tuple[Oid, ...]
    ) -> bool:
        return self._cells_of(cls).get((method, args)) is not None

    def explicit_classes_of(self, oid_like: OidLike) -> FrozenSet[Atom]:
        obj = as_oid(oid_like)
        cached = self._classes_memo.get(obj)
        if cached is None:
            live = set(self._base._memberships.get(obj, ()))
            per = self._history._membership_chains.get(obj)
            if per:
                for cls, chain in list(per.items()):
                    hit, was_member = _resolve(chain, self._ticket)
                    if not hit:
                        continue
                    if was_member:
                        live.add(cls)
                    else:
                        live.discard(cls)
            cached = frozenset(live)
            self._classes_memo[obj] = cached
        return cached

    def direct_classes_of(self, oid_like: OidLike) -> FrozenSet[Atom]:
        obj = as_oid(oid_like)
        return self.explicit_classes_of(obj) | self.catalogue.implicit_classes(
            obj
        )

    def _direct_extent(self, cls_atom: Atom) -> Set[Oid]:
        live = set(self._base._direct_extents.get(cls_atom, ()))
        dirty = self._history._membership_dirty.get(cls_atom)
        if dirty:
            for obj in list(dirty):
                if cls_atom in self.explicit_classes_of(obj):
                    live.add(obj)
                else:
                    live.discard(obj)
        return live

    def extent(self, cls, direct: bool = False) -> FrozenSet[Oid]:
        cls_atom = _atom(cls)
        self.hierarchy.require(cls_atom)
        members = self._direct_extent(cls_atom)
        if not direct:
            for sub in self.hierarchy.subclasses(cls_atom):
                members |= self._direct_extent(sub)
        for obj in self.known_objects():
            implicit = self.catalogue.implicit_classes(obj)
            if cls_atom in implicit:
                members.add(obj)
            elif not direct and any(
                self.hierarchy.is_subclass(c, cls_atom) for c in implicit
            ):
                members.add(obj)
        return frozenset(members)

    def known_objects(self) -> FrozenSet[Oid]:
        if self._known_memo is None:
            live = set(self._base._known)
            for obj, chain in list(self._history._known_chains.items()):
                hit, was_known = _resolve(chain, self._ticket)
                if not hit:
                    continue
                if was_known:
                    live.add(obj)
                else:
                    live.discard(obj)
            self._known_memo = frozenset(live)
        if self._discovered:
            return self._known_memo | self._discovered
        return self._known_memo

    def individual_universe(self) -> FrozenSet[Oid]:
        return frozenset(
            obj
            for obj in self.known_objects()
            if not self.catalogue.is_class(obj)
        )

    def method_universe(self) -> FrozenSet[Atom]:
        names: Set[Atom] = set(self.catalogue.methods())
        for owner in self._snapshot_owners():
            for method, _args in self._cells_of(owner):
                names.add(method)
        for _cls, method in list(self._implementations):
            names.add(method)
        return frozenset(names)

    def methods_defined_on(self, owner: OidLike) -> FrozenSet[Atom]:
        owner_oid = as_oid(owner)
        names: Set[Atom] = {
            method for method, _args in self._cells_of(owner_oid)
        }
        if self.catalogue.is_class(owner_oid):
            reachable = self.hierarchy.superclasses(owner_oid, strict=False)
        else:
            reachable = self.classes_of(owner_oid)
        for cls in reachable:
            names.update(
                method for method, _args in self._cells_of(cls)
            )
        for (cls, name) in list(self._implementations):
            if cls in reachable:
                names.add(name)
        return frozenset(names)

    def reverse_lookup_sound(self, method) -> bool:
        method_atom = _atom(method)
        if self.implementation_classes(method_atom):
            return False
        for cls in self.hierarchy.classes():
            if any(m == method_atom for m, _args in self._cells_of(cls)):
                return False
        return True

    def index_is_complete_for(self, method) -> bool:
        # No live index state is consulted from a snapshot; reverse
        # lookups fall back to forward evaluation, which is always sound.
        return False

    # ------------------------------------------------------------------
    # relations
    # ------------------------------------------------------------------

    def _relation_at(self, name: str) -> Optional[FrozenRelation]:
        if name in self._relations_memo:
            return self._relations_memo[name]
        live = self._base._relations.get(name)
        live_columns = live.column_names if live is not None else None
        live_rows = live.rows() if live is not None else None
        chain = self._history._relation_chains.get(name)
        result: Optional[FrozenRelation]
        hit = False
        if chain is not None:
            hit, pre = _resolve(chain, self._ticket)
            if hit:
                result = (
                    None
                    if pre is None
                    else FrozenRelation(name, pre[0], pre[1])
                )
        if not hit:
            result = (
                None
                if live is None
                else FrozenRelation(name, live_columns, live_rows)
            )
        self._relations_memo[name] = result
        return result

    def relation(self, name: str):
        relation = self._relation_at(name)
        if relation is None:
            raise UnknownClassError(f"relation {name} is not declared")
        return relation

    def relations(self) -> Dict[str, FrozenRelation]:
        names = set(self._base._relations)
        names.update(self._history._relation_chains)
        out: Dict[str, FrozenRelation] = {}
        for name in names:
            relation = self._relation_at(name)
            if relation is not None:
                out[name] = relation
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def describe(self, oid_like: OidLike) -> str:
        obj = as_oid(oid_like)
        lines = [f"object {obj}"]
        classes = sorted(self.direct_classes_of(obj), key=lambda a: a.name)
        if classes:
            lines.append(
                "  instance-of: " + ", ".join(str(c) for c in classes)
            )
        for (method, args), cell in sorted(
            self._cells_of(obj).items(), key=lambda item: str(item[0])
        ):
            arg_str = "@" + ",".join(str(a) for a in args) if args else ""
            if isinstance(cell, ScalarCell):
                lines.append(f"  {method}{arg_str} -> {cell.value}")
            else:
                members = ", ".join(sorted(str(v) for v in cell.values))
                lines.append(f"  {method}{arg_str} ->> {{{members}}}")
        return "\n".join(lines)

    def iter_records(self) -> Iterator[ObjectRecord]:
        known = self.known_objects()
        for owner in sorted(self._snapshot_owners(), key=str):
            if owner in known:
                yield ObjectRecord(owner, dict(self._cells_of(owner)))

    # ------------------------------------------------------------------
    # read-path discovery stays view-local
    # ------------------------------------------------------------------

    def _note_values(self, values: Iterable[Oid]) -> None:
        for value in values:
            self._discovered.add(value)
            if isinstance(value, FuncOid):
                self._discovered.update(value.args)

    # ------------------------------------------------------------------
    # the write surface raises; observers are inert
    # ------------------------------------------------------------------

    def _read_only(self, operation: str):
        raise SnapshotReadOnlyError(
            f"{operation} on a snapshot pinned at {self._pin.version}; "
            f"snapshots are read-only — write through the live store"
        )

    def declare_class(self, name, parents=()):
        self._read_only("declare_class")

    def declare_signature(self, cls, method, result, args=(), set_valued=False):
        self._read_only("declare_signature")

    def create_object(self, oid_like, classes=()):
        self._read_only("create_object")

    def add_instance(self, oid_like, cls):
        self._read_only("add_instance")

    def remove_instance(self, oid_like, cls):
        self._read_only("remove_instance")

    def purge_object(self, oid_like):
        self._read_only("purge_object")

    def set_attr(self, owner, method, value, args=()):
        self._read_only("set_attr")

    def set_attr_set(self, owner, method, values, args=()):
        self._read_only("set_attr_set")

    def add_to_set(self, owner, method, member, args=()):
        self._read_only("add_to_set")

    def unset_attr(self, owner, method, args=()):
        self._read_only("unset_attr")

    def define_method(self, cls, impl):
        self._read_only("define_method")

    def resolve_inheritance(self, cls, method, use_class):
        self._read_only("resolve_inheritance")

    def enable_index(self, method):
        self._read_only("enable_index")

    def disable_index(self, method):
        self._read_only("disable_index")

    def declare_relation(self, name, column_names):
        self._read_only("declare_relation")

    def insert_tuple(self, name, row):
        self._read_only("insert_tuple")

    def set_journal(self, journal):
        self._read_only("set_journal")

    def _record(self, oid_like):
        self._read_only("_record")

    def add_observer(self, observer) -> None:
        # Observers watch writes; a snapshot never writes.
        pass

    def remove_observer(self, observer) -> None:
        pass
