"""Inverted attribute indexes for nested-object queries.

The paper cites Bertino & Kim, *Indexing Techniques for Queries on Nested
Objects* [BERT89], as the companion evaluation technology for path
expressions.  This module provides the simplest member of that family: a
per-method inverted index mapping attribute values back to the objects
holding them, so a path step with a known value and an unknown host —
``X.Residence[addr1]`` with ``X`` unbound, or the tail-to-head direction
of any selector join — resolves by lookup instead of by scanning the
object universe.

Indexes are opt-in per method (``store.enable_index("Residence")``) and
maintained incrementally by the store's single write path; enabling an
index on existing data back-fills it from the current records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Optional, Set, Tuple

from repro.oid import Atom, Oid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datamodel.store import ObjectStore

__all__ = ["AttributeIndexes"]


class AttributeIndexes:
    """Per-method inverted indexes: (method, value) → owners."""

    def __init__(self) -> None:
        self._indexed: Set[Atom] = set()
        # method -> value -> set of (owner, args)
        self._entries: Dict[Atom, Dict[Oid, Set[Tuple[Oid, Tuple[Oid, ...]]]]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def is_indexed(self, method: Atom) -> bool:
        return method in self._indexed

    def indexed_methods(self) -> FrozenSet[Atom]:
        return frozenset(self._indexed)

    def enable(self, method: Atom, store: "ObjectStore") -> None:
        """Create (and back-fill) the inverted index for *method*."""
        if method in self._indexed:
            return
        self._indexed.add(method)
        table = self._entries.setdefault(method, {})
        for record in store.iter_records():
            for (cell_method, args), cell in record.entries():
                if cell_method != method:
                    continue
                for value in cell.as_set():
                    table.setdefault(value, set()).add((record.oid, args))

    def disable(self, method: Atom) -> None:
        self._indexed.discard(method)
        self._entries.pop(method, None)

    # ------------------------------------------------------------------
    # incremental maintenance (called from the store's write path)
    # ------------------------------------------------------------------

    def note_write(
        self,
        owner: Oid,
        method: Atom,
        args: Tuple[Oid, ...],
        old_values: FrozenSet[Oid],
        new_values: FrozenSet[Oid],
    ) -> None:
        if method not in self._indexed:
            return
        table = self._entries.setdefault(method, {})
        key = (owner, args)
        for value in old_values - new_values:
            bucket = table.get(value)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    table.pop(value, None)
        for value in new_values - old_values:
            table.setdefault(value, set()).add(key)

    def note_purge(self, owner: Oid) -> None:
        for table in self._entries.values():
            for value in list(table):
                table[value] = {
                    entry for entry in table[value] if entry[0] != owner
                }
                if not table[value]:
                    table.pop(value, None)

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def owners_of(
        self,
        method: Atom,
        value: Oid,
        args: Optional[Tuple[Oid, ...]] = None,
    ) -> Optional[FrozenSet[Oid]]:
        """Objects whose *method* cell contains *value* (None = no index).

        Only *explicitly stored* cells are indexed; inherited defaults and
        computed methods are not, so callers must fall back to forward
        evaluation when those could contribute (the walker checks).
        """
        if method not in self._indexed:
            self.misses += 1
            return None
        self.hits += 1
        entries = self._entries.get(method, {}).get(value, set())
        if args is None:
            return frozenset(owner for owner, _args in entries)
        return frozenset(
            owner for owner, owner_args in entries if owner_args == args
        )
