"""Behavioral inheritance with overriding and explicit conflict resolution.

Paper §2 ("Inheritance") and §6.1: method definitions and default attribute
values defined on a class are inherited by its subclasses and instances; a
redefinition in a subclass *overrides* the inherited one.  When an object
belongs to incomparable superclasses that each define the method, the paper
adapts Meyer's approach and requires "the user to resolve inheritance
conflicts explicitly (i.e., the user should state which definition of M is
inherited in C' as part of the schema definition)".

This module implements the selection of the *defining class* whose
definition an object inherits.  Structural inheritance (signatures) is
separate and handled in :mod:`repro.datamodel.store` — signatures are
"always inherited and never overwritten".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datamodel.hierarchy import ClassHierarchy
from repro.errors import InheritanceConflictError
from repro.oid import Atom

__all__ = ["InheritanceResolver"]


class InheritanceResolver:
    """Chooses which class's definition of a method an object inherits."""

    def __init__(self, hierarchy: ClassHierarchy) -> None:
        self._hierarchy = hierarchy
        # (inheriting class, method) -> class whose definition to use
        self._resolutions: Dict[Tuple[Atom, Atom], Atom] = {}

    def clone(self, hierarchy: ClassHierarchy) -> "InheritanceResolver":
        """An independent copy over *hierarchy* (snapshot schema images)."""
        copy = InheritanceResolver(hierarchy)
        copy._resolutions = dict(self._resolutions)
        return copy

    def declare_resolution(
        self, inheriting: Atom, method: Atom, use_class: Atom
    ) -> None:
        """Record that instances of *inheriting* take *method* from *use_class*.

        This is the schema-level conflict resolution of §6.1.  The chosen
        class must be a (non-strict) superclass of the inheriting class.
        """
        if not self._hierarchy.is_subclass(inheriting, use_class, strict=False):
            raise InheritanceConflictError(
                f"cannot resolve {method} for {inheriting} from "
                f"{use_class}: not a superclass"
            )
        self._resolutions[(inheriting, method)] = use_class

    def resolution_for(
        self, member_classes: Iterable[Atom], method: Atom
    ) -> Optional[Atom]:
        for cls in member_classes:
            resolved = self._resolutions.get((cls, method))
            if resolved is not None:
                return resolved
        return None

    # ------------------------------------------------------------------

    def candidate_classes(
        self,
        member_classes: Iterable[Atom],
        defining_classes: Iterable[Atom],
    ) -> List[Atom]:
        """Most-specific classes whose definition reaches the object.

        A defining class *D* reaches an object iff the object belongs to a
        class that is a (non-strict) subclass of *D*.  Among reaching
        classes, a definition in a subclass overrides one in a superclass,
        so only minimal (most specific) classes remain.
        """
        members: Set[Atom] = set(member_classes)
        reaching = [
            d
            for d in set(defining_classes)
            if any(
                self._hierarchy.is_subclass(c, d, strict=False)
                for c in members
            )
        ]
        minimal = [
            d
            for d in reaching
            if not any(
                other != d and self._hierarchy.is_subclass(other, d)
                for other in reaching
            )
        ]
        return sorted(minimal, key=lambda a: a.name)

    def select(
        self,
        obj_description: str,
        member_classes: FrozenSet[Atom],
        method: Atom,
        defining_classes: Iterable[Atom],
    ) -> Optional[Atom]:
        """Pick the single class whose definition of *method* is inherited.

        Returns ``None`` when no definition reaches the object (the method
        is simply not defined there).  Raises
        :class:`InheritanceConflictError` for an unresolved multiple-
        inheritance conflict.
        """
        candidates = self.candidate_classes(member_classes, defining_classes)
        if not candidates:
            return None
        if len(candidates) == 1:
            return candidates[0]
        resolved = self.resolution_for(member_classes, method)
        if resolved is not None and resolved in candidates:
            return resolved
        # A resolution declared on a superclass of a candidate also counts:
        # e.g. resolving workstudy's `earns` to employee picks the employee
        # definition even if the candidate list was computed from subclasses.
        if resolved is not None:
            for candidate in candidates:
                if self._hierarchy.is_subclass(candidate, resolved, strict=False):
                    return candidate
        raise InheritanceConflictError(
            f"{obj_description} inherits {method} from incomparable classes "
            f"{', '.join(str(c) for c in candidates)}; declare an explicit "
            f"resolution (Meyer-style, paper §6.1)"
        )
