"""Method implementations (paper §2 "Methods" and §5).

A method is "a pair consisting of a symbol, called the name of the method,
and a partial function, called the implementation".  Implementations come in
two flavours here:

* :class:`PythonMethod` — a native partial function supplied by the host
  application (the common case for derived attributes);
* query-defined methods (``ALTER CLASS ... ADD SIGNATURE ... SELECT ...``,
  §5) — built in :mod:`repro.xsql.ddl`, which produces objects satisfying
  the same :class:`MethodImplementation` protocol.

Implementations are *partial*: returning :data:`UNDEFINED` (or, for a
set-valued method, an empty result) means the method has no value for those
arguments — the OODB analogue of a null, distinct from inapplicability.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, FrozenSet, Optional, Tuple

from repro.errors import ArityError
from repro.oid import Atom, Oid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.datamodel.store import ObjectStore

__all__ = ["UNDEFINED", "MethodImplementation", "PythonMethod"]


class _Undefined:
    """Sentinel: the method is undefined (has no value) for these arguments."""

    _instance: Optional["_Undefined"] = None

    def __new__(cls) -> "_Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"


UNDEFINED = _Undefined()


class MethodImplementation:
    """Protocol for invocable method bodies.

    ``invoke`` returns the *set* of result oids — a singleton or empty set
    for scalar methods, any finite set for set-valued ones.  An empty set
    means undefined.
    """

    arity: int
    set_valued: bool

    def invoke(
        self, store: "ObjectStore", owner: Oid, args: Tuple[Oid, ...]
    ) -> FrozenSet[Oid]:
        raise NotImplementedError


@dataclass
class PythonMethod(MethodImplementation):
    """A method implemented by a host-language callable.

    The callable receives ``(store, owner, *args)`` and returns an
    :class:`~repro.oid.Oid` (scalar), an iterable of oids (set-valued), or
    :data:`UNDEFINED`.
    """

    name: Atom
    fn: Callable[..., object]
    arity: int = 0
    set_valued: bool = False

    def invoke(
        self, store: "ObjectStore", owner: Oid, args: Tuple[Oid, ...]
    ) -> FrozenSet[Oid]:
        if len(args) != self.arity:
            raise ArityError(
                f"method {self.name} expects {self.arity} argument(s), "
                f"got {len(args)}"
            )
        result = self.fn(store, owner, *args)
        if result is UNDEFINED or result is None:
            return frozenset()
        if self.set_valued:
            values = frozenset(result)  # type: ignore[arg-type]
            for value in values:
                if not isinstance(value, Oid):
                    raise TypeError(
                        f"set-valued method {self.name} produced a non-oid "
                        f"member: {value!r}"
                    )
            return values
        if not isinstance(result, Oid):
            raise TypeError(
                f"scalar method {self.name} must return an Oid or "
                f"UNDEFINED, got {result!r}"
            )
        return frozenset({result})
