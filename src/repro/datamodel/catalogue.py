"""The system catalogue, realized as ordinary classes (paper §2).

The paper stresses that the user "needs not know anything about the system
tables that store schema information": schema is queried with the same
language as data because classes and methods are themselves objects.  "In
practice, it is useful to distinguish attribute names from other objects by
placing them in a subdomain of the domain of all objects ... This can be
handily achieved by making the system catalogue part of the class
hierarchy."

This module defines the built-in classes and the sort bookkeeping that
divides the space of all objects into three subdomains: individual-objects,
class-objects, and method-objects.  The universe of class-objects is
disjoint from the other two (§2); whether individual- and method-objects are
disjoint is configurable (``strict_method_namespace``), matching the paper's
"we may or may not require the universes ... to be disjoint".
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Set

from repro.datamodel.hierarchy import OBJECT_CLASS, ClassHierarchy
from repro.errors import SchemaError
from repro.oid import NIL, Atom, FuncOid, Oid, Value

__all__ = [
    "NUMERAL",
    "STRING",
    "BOOLEAN",
    "NIL_CLASS",
    "BUILTIN_CLASSES",
    "Catalogue",
]

NUMERAL = Atom("Numeral")
STRING = Atom("String")
BOOLEAN = Atom("Boolean")
NIL_CLASS = Atom("Nil")

#: Classes present in every store, all direct subclasses of ``Object``.
BUILTIN_CLASSES = (NUMERAL, STRING, BOOLEAN, NIL_CLASS)


class Catalogue:
    """Sort bookkeeping for the three object subdomains.

    The catalogue answers "is this atom a class?", "is this atom a method?"
    and classifies literal objects into the built-in classes.  It does not
    store attribute values — that is the object store's job — but it *is*
    what makes schema browsing possible: method variables range over the
    method-objects recorded here, class variables over the class-objects of
    the hierarchy.
    """

    def __init__(
        self,
        hierarchy: ClassHierarchy,
        strict_method_namespace: bool = False,
    ) -> None:
        self.hierarchy = hierarchy
        self.strict_method_namespace = strict_method_namespace
        self._methods: Set[Atom] = set()
        for builtin in BUILTIN_CLASSES:
            hierarchy.add_class(builtin, [OBJECT_CLASS])

    def clone(self, hierarchy: ClassHierarchy) -> "Catalogue":
        """An independent copy over *hierarchy* (snapshot schema images)."""
        copy = Catalogue(
            hierarchy, strict_method_namespace=self.strict_method_namespace
        )
        copy._methods = set(self._methods)
        return copy

    # ------------------------------------------------------------------
    # sorts
    # ------------------------------------------------------------------

    def is_class(self, term: Oid) -> bool:
        return isinstance(term, Atom) and term in self.hierarchy

    def is_method(self, term: Oid) -> bool:
        return isinstance(term, Atom) and term in self._methods

    def register_method(self, method: Atom) -> None:
        """Place *method* in the method-object subdomain.

        With a strict namespace, a method atom may not collide with a class
        atom (class-objects are always disjoint from the rest), and gains
        "a degree of syntactic safety" by also being barred from use as an
        individual; the non-strict default gives users "added flexibility
        in choosing names" (§2).
        """
        if self.is_class(method):
            raise SchemaError(
                f"{method} names a class; class-objects are disjoint from "
                f"method-objects"
            )
        self._methods.add(method)

    def methods(self) -> FrozenSet[Atom]:
        return frozenset(self._methods)

    def check_individual(self, term: Oid) -> None:
        """Validate use of *term* as an individual object id."""
        if self.is_class(term):
            raise SchemaError(
                f"{term} is a class-object and cannot be an individual"
            )
        if self.strict_method_namespace and self.is_method(term):
            raise SchemaError(
                f"{term} is a method-object; the strict namespace forbids "
                f"using it as an individual"
            )

    # ------------------------------------------------------------------
    # literals
    # ------------------------------------------------------------------

    def literal_class(self, term: Oid) -> Optional[Atom]:
        """The built-in class a literal object belongs to, if any."""
        if isinstance(term, Value):
            if isinstance(term.value, bool):
                return BOOLEAN
            if isinstance(term.value, (int, float)):
                return NUMERAL
            return STRING
        if term == NIL:
            return NIL_CLASS
        return None

    def implicit_classes(self, term: Oid) -> FrozenSet[Atom]:
        """Classes *term* belongs to without any explicit instance-of fact.

        Every individual is an instance of ``Object`` (§6.2); literals also
        belong to their built-in class.  Id-function results carry no
        implicit class beyond ``Object`` — views assign theirs explicitly.
        """
        lit = self.literal_class(term)
        if lit is not None:
            return frozenset({lit, OBJECT_CLASS})
        if isinstance(term, (Atom, FuncOid)) and not self.is_class(term):
            return frozenset({OBJECT_CLASS})
        return frozenset()
