"""The statistics catalogue: cardinalities for cost-based planning.

The paper's §6 execution plans say which extents are *sound* to
enumerate; choosing a good *order* and *access path* needs numbers.  This
module maintains the three quantities the cost model
(:mod:`repro.xsql.costplan`) consumes:

* **extent cardinalities** — direct instance counts per class, summed
  over the subclass closure on demand;
* **per-method row counts** — how many (owner, args) cells carry values,
  and how many (owner, args, value) entries exist in total;
* **per-method distinct counts** — distinct stored values (the divisor
  of equality selectivity) and distinct owners (the divisor of fan-out).

Everything is maintained incrementally through the store's single write
path — the same hooks that keep the inverted indexes
(:mod:`repro.datamodel.indexes`) current — so reading a statistic is a
dictionary lookup, never a scan.  The catalogue carries a monotone
``generation`` counter, bumped on every data write and by every
schema-shaping operation (the store forwards its ``schema_generation``
bumps), which compiled cost plans record so the pipeline can tell when a
cached plan was costed against numbers that have since moved.

Statistics are *estimates* by design: implicit literal-class members and
computed method implementations are invisible to the write path, so the
cost model treats every number as an approximation that only has to rank
alternatives sanely, never as a truth the executor relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

from repro.oid import Atom, Oid

__all__ = ["MethodStats", "StatisticsCatalogue"]


@dataclass
class MethodStats:
    """Incremental counters for one method's explicitly stored cells."""

    #: (owner, args) cells currently holding at least one value.
    cells: int = 0
    #: Total (owner, args, value) entries across all cells.
    rows: int = 0
    _value_counts: Dict[Oid, int] = field(default_factory=dict)
    _owner_counts: Dict[Oid, int] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def distinct_values(self) -> int:
        return len(self._value_counts)

    @property
    def distinct_owners(self) -> int:
        return len(self._owner_counts)

    @property
    def fan_out(self) -> float:
        """Average values per stored cell (1.0 for purely scalar data)."""
        return self.rows / self.cells if self.cells else 1.0

    def expected_owners(self, value: Oid = None) -> float:
        """Estimated owners whose cell contains one value (probe result).

        With *value* given and actually counted, the estimate is exact for
        explicit cells; otherwise the uniform assumption
        ``rows / distinct_values`` applies.
        """
        if value is not None:
            counted = self._value_counts.get(value)
            if counted is not None:
                return float(counted)
        if not self.distinct_values:
            return 0.0
        return self.rows / self.distinct_values

    # ------------------------------------------------------------------

    def note_write(
        self,
        owner: Oid,
        old_values: FrozenSet[Oid],
        new_values: FrozenSet[Oid],
    ) -> None:
        self.rows += len(new_values) - len(old_values)
        if old_values and not new_values:
            self.cells -= 1
        elif new_values and not old_values:
            self.cells += 1
        for value in old_values - new_values:
            remaining = self._value_counts.get(value, 0) - 1
            if remaining > 0:
                self._value_counts[value] = remaining
            else:
                self._value_counts.pop(value, None)
        for value in new_values - old_values:
            self._value_counts[value] = self._value_counts.get(value, 0) + 1
        delta = len(new_values) - len(old_values)
        if delta:
            remaining = self._owner_counts.get(owner, 0) + delta
            if remaining > 0:
                self._owner_counts[owner] = remaining
            else:
                self._owner_counts.pop(owner, None)

    def as_dict(self) -> Dict[str, float]:
        return {
            "cells": self.cells,
            "rows": self.rows,
            "distinct_values": self.distinct_values,
            "distinct_owners": self.distinct_owners,
            "fan_out": round(self.fan_out, 3),
        }


_EMPTY = MethodStats()


class StatisticsCatalogue:
    """Per-store cardinality statistics, maintained by the write path."""

    def __init__(self) -> None:
        self._methods: Dict[Atom, MethodStats] = {}
        self._direct_extents: Dict[Atom, int] = {}
        #: Bumped on every data write and every schema bump the store
        #: forwards; cost plans record it to detect drifted estimates.
        self.generation = 0

    # ------------------------------------------------------------------
    # hooks (called from ObjectStore's single write path)
    # ------------------------------------------------------------------

    def note_write(
        self,
        owner: Oid,
        method: Atom,
        args: Tuple[Oid, ...],
        old_values: FrozenSet[Oid],
        new_values: FrozenSet[Oid],
    ) -> None:
        if old_values == new_values:
            return
        stats = self._methods.get(method)
        if stats is None:
            stats = self._methods[method] = MethodStats()
        stats.note_write(owner, old_values, new_values)
        self.generation += 1

    def note_membership(self, cls: Atom, delta: int) -> None:
        """An object joined (+1) or left (-1) the direct extent of *cls*."""
        self._direct_extents[cls] = self._direct_extents.get(cls, 0) + delta
        if self._direct_extents[cls] <= 0:
            self._direct_extents.pop(cls, None)
        self.generation += 1

    def note_schema_change(self) -> None:
        """Forwarded ``schema_generation`` bump (DDL moves estimates too)."""
        self.generation += 1

    # ------------------------------------------------------------------
    # reads (the cost model's interface)
    # ------------------------------------------------------------------

    def method_stats(self, method: Atom) -> MethodStats:
        """The counters of *method* (an all-zero record when unseen)."""
        return self._methods.get(method, _EMPTY)

    def direct_extent_count(self, cls: Atom) -> int:
        return self._direct_extents.get(cls, 0)

    def known_methods(self) -> Tuple[Atom, ...]:
        return tuple(sorted(self._methods, key=lambda a: a.name))

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-friendly dump (``.stats`` in the REPL, debugging)."""
        return {
            "generation": self.generation,
            "extents": {
                cls.name: count
                for cls, count in sorted(
                    self._direct_extents.items(), key=lambda kv: kv[0].name
                )
            },
            "methods": {
                method.name: stats.as_dict()
                for method, stats in sorted(
                    self._methods.items(), key=lambda kv: kv[0].name
                )
            },
        }
