"""Tuple-objects and their attribute/method value cells (paper §2).

"Essentially, all our objects are tuple-objects.  Each entry in a
tuple-object is the value of one attribute.  If the attribute is scalar,
then the value is a single object id; if the attribute is set-valued, then
the value is a set of object id's."

Because attributes are identified with 0-ary methods, a cell is keyed by the
pair ``(method, args)``: attributes use the empty argument tuple, k-ary
methods use a tuple of k ground oids.  Stored cells record *explicitly
defined* values; inherited defaults and computed method results are resolved
by the store on top of these records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Tuple, Union

from repro.errors import ArityError
from repro.oid import Atom, Oid

__all__ = ["ScalarCell", "SetCell", "Cell", "CellKey", "ObjectRecord"]

CellKey = Tuple[Atom, Tuple[Oid, ...]]


@dataclass(frozen=True)
class ScalarCell:
    """The value of a scalar attribute/method: a single object id."""

    value: Oid

    @property
    def set_valued(self) -> bool:
        return False

    def as_set(self) -> FrozenSet[Oid]:
        return frozenset({self.value})


@dataclass(frozen=True)
class SetCell:
    """The value of a set-valued attribute/method: a set of object ids."""

    values: FrozenSet[Oid]

    @property
    def set_valued(self) -> bool:
        return True

    def as_set(self) -> FrozenSet[Oid]:
        return self.values

    def with_member(self, member: Oid) -> "SetCell":
        return SetCell(self.values | {member})

    def without_member(self, member: Oid) -> "SetCell":
        return SetCell(self.values - {member})


Cell = Union[ScalarCell, SetCell]


@dataclass
class ObjectRecord:
    """Everything explicitly recorded about one object.

    ``cells`` holds explicitly-defined attribute and stored-method values;
    an absent key means the attribute is *undefined* here (it may still be
    inherited or computed).  Classes are objects too, so class atoms get
    records as well — their cells double as inheritable default values.
    """

    oid: Oid
    cells: Dict[CellKey, Cell] = field(default_factory=dict)

    def get(self, method: Atom, args: Tuple[Oid, ...] = ()) -> Optional[Cell]:
        return self.cells.get((method, args))

    def set_scalar(
        self, method: Atom, value: Oid, args: Tuple[Oid, ...] = ()
    ) -> None:
        existing = self.cells.get((method, args))
        if existing is not None and existing.set_valued:
            raise ArityError(
                f"{method} already holds a set value on {self.oid}; cannot "
                f"assign a scalar"
            )
        self.cells[(method, args)] = ScalarCell(value)

    def set_set(
        self,
        method: Atom,
        values: FrozenSet[Oid],
        args: Tuple[Oid, ...] = (),
    ) -> None:
        existing = self.cells.get((method, args))
        if existing is not None and not existing.set_valued:
            raise ArityError(
                f"{method} already holds a scalar value on {self.oid}; "
                f"cannot assign a set"
            )
        self.cells[(method, args)] = SetCell(frozenset(values))

    def add_to_set(
        self, method: Atom, member: Oid, args: Tuple[Oid, ...] = ()
    ) -> None:
        existing = self.cells.get((method, args))
        if existing is None:
            self.cells[(method, args)] = SetCell(frozenset({member}))
        elif existing.set_valued:
            self.cells[(method, args)] = existing.with_member(member)
        else:
            raise ArityError(
                f"{method} holds a scalar value on {self.oid}; cannot add "
                f"a set member"
            )

    def remove_from_set(
        self, method: Atom, member: Oid, args: Tuple[Oid, ...] = ()
    ) -> None:
        existing = self.cells.get((method, args))
        if existing is None or not existing.set_valued:
            raise ArityError(
                f"{method} holds no set value on {self.oid}"
            )
        self.cells[(method, args)] = existing.without_member(member)

    def unset(self, method: Atom, args: Tuple[Oid, ...] = ()) -> None:
        """Make the attribute undefined again (the OODB analogue of null)."""
        self.cells.pop((method, args), None)

    def defined_methods(self) -> Iterator[Atom]:
        """Method names with at least one explicitly defined cell here."""
        seen = set()
        for method, _args in self.cells:
            if method not in seen:
                seen.add(method)
                yield method

    def entries(self) -> Iterator[Tuple[CellKey, Cell]]:
        return iter(self.cells.items())
