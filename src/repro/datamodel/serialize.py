"""Saving and loading object stores as JSON full snapshots.

The paper's model is purely logical; a usable library still needs its
databases to outlive the process.  The format captures everything the
store *declares and stores*: the class hierarchy, signatures, instance-of
memberships, attribute/method cells, first-class relations, inheritance
resolutions, and enabled indexes (rebuilt on load).

.. deprecated::
    ``save_store``/``load_store`` are the *full-snapshot* persistence
    path and are kept as thin, warning-free aliases of the redesigned
    storage API: prefer ``Session.open(path, engine=...)`` /
    ``Session.checkpoint()`` / ``Session.close()`` backed by the
    ordered-KV engines in :mod:`repro.storage` (incremental writes,
    WAL, crash recovery).  See the migration table in
    ``docs/LANGUAGE.md``; the JSON format itself remains supported as
    the ``dict`` backend's checkpoint format.

Not serialized — and reported in :attr:`SerializationReport.skipped` —
are computed method implementations: native ones are Python callables,
and query-defined ones (§5) are re-installed by re-running their ``ALTER
CLASS`` statements, which the caller owns.

Oid encoding: atoms ``{"a": name}``, literals ``{"v": payload}`` (with a
string/bool/number tag implied by JSON), id-terms
``{"f": functor, "args": [...]}``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.datamodel.catalogue import BUILTIN_CLASSES
from repro.datamodel.hierarchy import OBJECT_CLASS
from repro.datamodel.objects import ScalarCell
from repro.datamodel.store import ObjectStore
from repro.errors import XsqlError
from repro.oid import Atom, FuncOid, Oid, Value

__all__ = [
    "SerializationError",
    "SerializationReport",
    "encode_oid",
    "decode_oid",
    "store_to_dict",
    "store_from_dict",
    "save_store",
    "load_store",
]


class SerializationError(XsqlError):
    """The store contains something the JSON format cannot express."""


@dataclass
class SerializationReport:
    """What a dump covered and what it had to leave out."""

    classes: int = 0
    objects: int = 0
    cells: int = 0
    relations: int = 0
    skipped: List[str] = field(default_factory=list)


def encode_oid(term: Oid) -> object:
    """Encode one oid into the JSON oid scheme (shared with
    :mod:`repro.storage.codec` for KV cell bodies)."""
    if isinstance(term, Atom):
        return {"a": term.name}
    if isinstance(term, Value):
        return {"v": term.value}
    if isinstance(term, FuncOid):
        return {"f": term.functor, "args": [encode_oid(a) for a in term.args]}
    raise SerializationError(f"cannot encode {term!r}")


def decode_oid(data: object) -> Oid:
    """Invert :func:`encode_oid`."""
    if not isinstance(data, dict):
        raise SerializationError(f"malformed oid entry {data!r}")
    if "a" in data:
        return Atom(data["a"])
    if "v" in data:
        return Value(data["v"])
    if "f" in data:
        return FuncOid(
            data["f"], tuple(decode_oid(a) for a in data.get("args", []))
        )
    raise SerializationError(f"malformed oid entry {data!r}")


# Historical private spellings, used throughout this module.
_encode_oid = encode_oid
_decode_oid = decode_oid


def store_to_dict(store: ObjectStore) -> Tuple[Dict, SerializationReport]:
    """Serialize *store* into a JSON-compatible dictionary."""
    report = SerializationReport()
    hierarchy = store.hierarchy

    implicit = set(BUILTIN_CLASSES) | {OBJECT_CLASS}
    classes = [c.name for c in hierarchy.classes() if c not in implicit]
    edges = [
        [sub.name, sup.name]
        for sub, sup in hierarchy.edges()
        if sup != OBJECT_CLASS and sub not in implicit
    ]
    report.classes = len(classes)

    signatures = []
    for cls in hierarchy.classes():
        for signature in store.declared_signatures(cls):
            signatures.append(
                {
                    "cls": cls.name,
                    "method": signature.method.name,
                    "args": [a.name for a in signature.type_expr.args],
                    "result": signature.result.name,
                    "set": signature.set_valued,
                }
            )

    objects = []
    for record in store.iter_records():
        entry: Dict[str, object] = {"oid": _encode_oid(record.oid)}
        memberships = sorted(
            (
                c.name
                for c in store.direct_classes_of(record.oid)
                if c in hierarchy
                and c != OBJECT_CLASS
                and not store.catalogue.literal_class(record.oid)
            ),
        )
        if memberships:
            entry["isa"] = memberships
        cells = []
        for (method, args), cell in sorted(
            record.entries(), key=lambda item: str(item[0])
        ):
            cells.append(
                {
                    "m": method.name,
                    "args": [_encode_oid(a) for a in args],
                    "scalar": isinstance(cell, ScalarCell),
                    "values": [
                        _encode_oid(v)
                        for v in sorted(cell.as_set(), key=str)
                    ],
                }
            )
            report.cells += 1
        if cells:
            entry["cells"] = cells
        objects.append(entry)
        report.objects += 1

    relations = []
    for name, relation in sorted(store.relations().items()):
        relations.append(
            {
                "name": name,
                "columns": list(relation.column_names),
                "rows": [
                    [_encode_oid(v) for v in row]
                    for row in relation.sorted_rows()
                ],
            }
        )
        report.relations += 1

    resolutions = [
        {"cls": cls.name, "method": method.name, "use": use.name}
        for (cls, method), use in sorted(
            store.resolver._resolutions.items(), key=str
        )
    ]

    for (cls, method) in sorted(store._implementations, key=str):
        report.skipped.append(
            f"method implementation {method} on {cls} (re-install "
            f"implementations after loading)"
        )

    payload = {
        "format": "xsql-store",
        "version": 1,
        "options": {
            "strict_method_namespace": store.catalogue.strict_method_namespace,
            "validate_values": store.validate_values,
        },
        "classes": classes,
        "edges": edges,
        "signatures": signatures,
        "objects": objects,
        "relations": relations,
        "resolutions": resolutions,
        "indexes": sorted(
            m.name for m in store.indexed_methods()
        ),
    }
    return payload, report


def store_from_dict(payload: Dict) -> ObjectStore:
    """Rebuild an :class:`ObjectStore` from a serialized dictionary."""
    if payload.get("format") != "xsql-store":
        raise SerializationError("not an xsql-store document")
    if payload.get("version") != 1:
        raise SerializationError(
            f"unsupported format version {payload.get('version')!r}"
        )
    options = payload.get("options", {})
    store = ObjectStore(
        strict_method_namespace=options.get("strict_method_namespace", False),
        validate_values=False,  # re-enabled after loading, below
    )
    # Declare classes in dependency order with their real parents, so the
    # implicit Object default only applies to genuine roots (otherwise
    # every class would gain a spurious direct Object edge).
    parents: Dict[str, List[str]] = {}
    for sub, sup in payload.get("edges", []):
        parents.setdefault(sub, []).append(sup)
    pending = list(payload.get("classes", []))
    guard = len(pending) + 1
    while pending and guard:
        guard -= 1
        still_pending = []
        for name in pending:
            wanted = parents.get(name, [])
            if all(
                Atom(p) in store.hierarchy or p == "Object" for p in wanted
            ):
                store.declare_class(name, wanted)
            else:
                still_pending.append(name)
        if len(still_pending) == len(pending):  # pragma: no cover - cyclic
            raise SerializationError(
                f"unresolvable class dependencies: {still_pending}"
            )
        pending = still_pending
    for signature in payload.get("signatures", []):
        store.declare_signature(
            signature["cls"],
            signature["method"],
            signature["result"],
            args=signature.get("args", []),
            set_valued=signature.get("set", False),
        )
    for entry in payload.get("objects", []):
        oid = _decode_oid(entry["oid"])
        memberships = entry.get("isa", [])
        if not store.catalogue.is_class(oid):
            store.create_object(oid, memberships)
        for cell in entry.get("cells", []):
            method = cell["m"]
            args = [_decode_oid(a) for a in cell.get("args", [])]
            values = [_decode_oid(v) for v in cell.get("values", [])]
            if cell.get("scalar", True):
                if len(values) != 1:
                    raise SerializationError(
                        f"scalar cell {method} of {oid} has "
                        f"{len(values)} values"
                    )
                store.set_attr(oid, method, values[0], args=args)
            else:
                store.set_attr_set(oid, method, values, args=args)
    for relation in payload.get("relations", []):
        store.declare_relation(relation["name"], relation["columns"])
        for row in relation.get("rows", []):
            store.insert_tuple(
                relation["name"], [_decode_oid(v) for v in row]
            )
    for resolution in payload.get("resolutions", []):
        store.resolve_inheritance(
            resolution["cls"], resolution["method"], resolution["use"]
        )
    for method in payload.get("indexes", []):
        store.enable_index(method)
    store.validate_values = options.get("validate_values", False)
    return store


def save_store(
    store: ObjectStore, path: str
) -> SerializationReport:
    """Write *store* to a JSON file; returns the coverage report."""
    payload, report = store_to_dict(store)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return report


def load_store(path: str) -> ObjectStore:
    """Read a store previously written by :func:`save_store`."""
    with open(path) as handle:
        payload = json.load(handle)
    return store_from_dict(payload)
