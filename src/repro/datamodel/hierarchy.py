"""The IS-A class hierarchy: an acyclic graph of class-objects (paper §2).

Classes are objects, so the hierarchy stores :class:`~repro.oid.Atom` nodes.
The subclass relationship is *strict* in queries (``Cl subclassOf Cl`` is
always false, §3.1), but many internal operations need the reflexive
closure, so both flavours are provided.

The hierarchy also answers the schema-level questions the type system needs
(§6.2): whether a set of classes can have a common instance (range
emptiness) and whether every member of a range must be an instance of a
given class (the subrange test).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.errors import CyclicHierarchyError, SchemaError, UnknownClassError
from repro.oid import Atom

__all__ = ["ClassHierarchy", "OBJECT_CLASS"]

#: The root class: "the class containing all individual objects as its
#: instances" (paper §3.1, footnote 15).
OBJECT_CLASS = Atom("Object")


class ClassHierarchy:
    """A mutable, always-acyclic IS-A graph over class atoms.

    Every declared class is implicitly a (possibly indirect) subclass of
    ``Object`` unless it is one of the meta-classes that organize the
    catalogue itself; those are handled by
    :mod:`repro.datamodel.catalogue`.
    """

    def __init__(self) -> None:
        self._parents: Dict[Atom, Set[Atom]] = {OBJECT_CLASS: set()}
        self._children: Dict[Atom, Set[Atom]] = {OBJECT_CLASS: set()}
        # Closure memos — membership tests run on every method invocation
        # and every FROM binding, so the transitive closures are cached
        # and invalidated whenever an edge is added.
        self._super_cache: Dict[Atom, FrozenSet[Atom]] = {}
        self._sub_cache: Dict[Atom, FrozenSet[Atom]] = {}

    # ------------------------------------------------------------------
    # declaration
    # ------------------------------------------------------------------

    def add_class(self, cls: Atom, parents: Iterable[Atom] = ()) -> None:
        """Declare *cls*, optionally as a subclass of each of *parents*.

        A class declared with no parents becomes a direct subclass of
        ``Object``.  Re-declaring an existing class only adds edges.
        """
        if not isinstance(cls, Atom):
            raise SchemaError(f"class name must be an Atom, got {cls!r}")
        if cls not in self._parents:
            self._parents[cls] = set()
            self._children[cls] = set()
        parent_list = list(parents)
        if not parent_list and cls != OBJECT_CLASS:
            parent_list = [OBJECT_CLASS]
        for parent in parent_list:
            self.add_edge(cls, parent)

    def add_edge(self, sub: Atom, sup: Atom) -> None:
        """Record that *sub* IS-A *sup*, rejecting cycles."""
        for cls in (sub, sup):
            if cls not in self._parents:
                self._parents[cls] = set()
                self._children[cls] = set()
                if cls != OBJECT_CLASS:
                    self._parents[cls].add(OBJECT_CLASS)
                    self._children[OBJECT_CLASS].add(cls)
        if sub == sup:
            raise CyclicHierarchyError(f"{sub} cannot be a subclass of itself")
        if self.is_subclass(sup, sub, strict=False):
            raise CyclicHierarchyError(
                f"edge {sub} IS-A {sup} would create a cycle"
            )
        self._parents[sub].add(sup)
        self._children[sup].add(sub)
        self._super_cache.clear()
        self._sub_cache.clear()

    def clone(self) -> "ClassHierarchy":
        """An independent copy of the graph (snapshot schema images)."""
        copy = ClassHierarchy()
        copy._parents = {cls: set(sups) for cls, sups in self._parents.items()}
        copy._children = {
            cls: set(subs) for cls, subs in self._children.items()
        }
        return copy

    # ------------------------------------------------------------------
    # membership & traversal
    # ------------------------------------------------------------------

    def __contains__(self, cls: Atom) -> bool:
        return cls in self._parents

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._parents)

    def __len__(self) -> int:
        return len(self._parents)

    def require(self, cls: Atom) -> None:
        """Raise :class:`UnknownClassError` unless *cls* is declared."""
        if cls not in self._parents:
            raise UnknownClassError(f"class {cls} is not declared")

    def classes(self) -> List[Atom]:
        """All declared classes, in a deterministic order."""
        return sorted(self._parents, key=lambda a: a.name)

    def direct_superclasses(self, cls: Atom) -> FrozenSet[Atom]:
        self.require(cls)
        return frozenset(self._parents[cls])

    def direct_subclasses(self, cls: Atom) -> FrozenSet[Atom]:
        self.require(cls)
        return frozenset(self._children[cls])

    def superclasses(self, cls: Atom, strict: bool = True) -> FrozenSet[Atom]:
        """All (transitive) superclasses of *cls* (memoized)."""
        cached = self._super_cache.get(cls)
        if cached is None:
            self.require(cls)
            seen: Set[Atom] = set()
            stack = list(self._parents[cls])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self._parents[node])
            cached = frozenset(seen)
            self._super_cache[cls] = cached
        if not strict:
            return cached | {cls}
        return cached

    def subclasses(self, cls: Atom, strict: bool = True) -> FrozenSet[Atom]:
        """All (transitive) subclasses of *cls* (memoized)."""
        cached = self._sub_cache.get(cls)
        if cached is None:
            self.require(cls)
            seen: Set[Atom] = set()
            stack = list(self._children[cls])
            while stack:
                node = stack.pop()
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(self._children[node])
            cached = frozenset(seen)
            self._sub_cache[cls] = cached
        if not strict:
            return cached | {cls}
        return cached

    def is_subclass(self, sub: Atom, sup: Atom, strict: bool = True) -> bool:
        """The ``subclassOf`` predicate.

        With ``strict=True`` this is the query-level relation of §3.1
        (irreflexive); with ``strict=False`` it is the reflexive closure
        used in typing (§6.1 allows "possibly nonstrict" subclasses).
        """
        if sub == sup:
            return not strict
        if sub not in self._parents or sup not in self._parents:
            return False
        return sup in self.superclasses(sub)

    # ------------------------------------------------------------------
    # linearization for behavioral inheritance
    # ------------------------------------------------------------------

    def specificity_order(self, classes: Iterable[Atom]) -> List[Atom]:
        """Sort *classes* most-specific first (subclasses before supers).

        Incomparable classes are ordered by name for determinism; callers
        that care about genuine ambiguity (multiple inheritance of method
        definitions) must detect it themselves — see
        :mod:`repro.datamodel.inheritance`.
        """
        items = list(dict.fromkeys(classes))
        result: List[Atom] = []
        remaining = set(items)
        while remaining:
            # A class is minimal if no *other remaining* class is below it.
            layer = sorted(
                (
                    c
                    for c in remaining
                    if not any(
                        self.is_subclass(other, c)
                        for other in remaining
                        if other != c
                    )
                ),
                key=lambda a: a.name,
            )
            if not layer:  # pragma: no cover - impossible in a DAG
                layer = sorted(remaining, key=lambda a: a.name)
            result.extend(layer)
            remaining.difference_update(layer)
        return result

    # ------------------------------------------------------------------
    # range reasoning for the type system (§6.2)
    # ------------------------------------------------------------------

    def common_descendants(
        self, classes: Iterable[Atom]
    ) -> FrozenSet[Atom]:
        """Classes that are (non-strict) subclasses of every given class."""
        class_list = list(classes)
        if not class_list:
            return frozenset(self._parents)
        common = self.subclasses(class_list[0], strict=False)
        for cls in class_list[1:]:
            common &= self.subclasses(cls, strict=False)
        return common

    def potentially_joint(self, classes: Iterable[Atom]) -> bool:
        """Could *some* oid be an instance of every class in *classes*?

        The paper assumes "schema definition provides sufficient information
        for determining whether A(X) is empty" (§6.2).  Our schema-level
        criterion: a common instance is possible iff the classes share a
        common (non-strict) descendant class — e.g. ``{Person, Employee}``
        share ``Employee`` while ``{Person, Company}`` share nothing, so the
        latter range is empty.
        """
        return bool(self.common_descendants(classes))

    def topological(self) -> List[Atom]:
        """All classes, superclasses before subclasses (stable order)."""
        indegree = {c: len(self._parents[c]) for c in self._parents}
        frontier = sorted(
            (c for c, d in indegree.items() if d == 0), key=lambda a: a.name
        )
        order: List[Atom] = []
        while frontier:
            node = frontier.pop(0)
            order.append(node)
            added: List[Atom] = []
            for child in self._children[node]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    added.append(child)
            frontier.extend(sorted(added, key=lambda a: a.name))
            frontier.sort(key=lambda a: a.name)
        return order

    def edges(self) -> List[Tuple[Atom, Atom]]:
        """All direct (sub, sup) edges, deterministically ordered."""
        return sorted(
            (
                (sub, sup)
                for sub, sups in self._parents.items()
                for sup in sups
            ),
            key=lambda pair: (pair[0].name, pair[1].name),
        )
