"""Lightweight per-session execution metrics.

Every :class:`~repro.xsql.session.Session` owns a
:class:`SessionMetrics`; the staged pipeline
(:mod:`repro.xsql.pipeline`) reports into it as statements flow through
``parse → normalize → analyze → plan → execute``:

* **timers** — cumulative wall time and call count per stage;
* **counters** — monotonically increasing event counts (statement/plan
  cache hits and misses, typed-plan fallbacks, statements executed);
* **observations** — value distributions (rows produced per query,
  per-variable instantiation-set sizes from the Theorem 6.1 optimizer).

The collector is deliberately dependency-free and cheap: one dict lookup
and a ``perf_counter`` pair per stage.  ``session.stats()`` returns
:meth:`SessionMetrics.snapshot`; the REPL's ``--stats`` flag and
``python -m repro.difftest --stats`` print :meth:`SessionMetrics.summary`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

__all__ = ["Observation", "PercentileCurve", "SessionMetrics"]

#: Sample-list cap per Observation; beyond it the list is decimated (every
#: other kept sample dropped, stride doubled) so long sessions stay O(1)
#: in memory while percentiles remain representative and deterministic.
_SAMPLE_CAP = 512


@dataclass
class Observation:
    """Running count/total/min/max — and a capped sample for percentiles."""

    count: int = 0
    total: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    samples: List[float] = field(default_factory=list, repr=False)
    _stride: int = field(default=1, repr=False)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)
        # Deterministic decimating sample: keep every _stride-th value.
        if (self.count - 1) % self._stride == 0:
            self.samples.append(value)
            if len(self.samples) > _SAMPLE_CAP:
                self.samples = self.samples[::2]
                self._stride *= 2

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples (0 < f <= 1)."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, -(-int(fraction * 100) * len(ordered) // 100))
        return ordered[min(rank, len(ordered)) - 1]

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0.0,
            "max": self.maximum if self.maximum is not None else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
        }


@dataclass
class PercentileCurve:
    """Percentile distributions keyed by an ordinal scale.

    One :class:`Observation` per key — the keys are scale points
    (population tiers, input sizes), the values latencies or rates — so
    ``curve("p95")`` reads off a latency-vs-scale curve directly.  The
    scale harness (:mod:`repro.bench.scale`) keeps one curve per query
    and per operator; insertion order of the keys is preserved, which
    keeps the emitted artifacts deterministic.
    """

    points: Dict[str, Observation] = field(default_factory=dict)

    def observe(self, key: str, value: float) -> None:
        self.points.setdefault(key, Observation()).record(value)

    def curve(self, stat: str = "p50") -> List[tuple]:
        """``[(key, value)]`` for one statistic across all scale points.

        *stat* is ``"p50"``/``"p95"`` (any percentile as ``"pNN"``),
        ``"mean"``, ``"min"``, ``"max"``, or ``"count"``.
        """
        out = []
        for key, obs in self.points.items():
            if stat.startswith("p") and stat[1:].isdigit():
                value = obs.percentile(int(stat[1:]) / 100.0)
            else:
                value = getattr(obs, {"min": "minimum", "max": "maximum"}.get(stat, stat))
                if value is None:
                    value = 0.0
            out.append((key, value))
        return out

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {key: obs.as_dict() for key, obs in self.points.items()}


@dataclass
class SessionMetrics:
    """The per-session metrics collector."""

    timers: Dict[str, Observation] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)
    observations: Dict[str, Observation] = field(default_factory=dict)
    #: Per-statement scratch: stage -> seconds (and string notes), cleared
    #: by :meth:`begin_statement`.  The REPL's ``--stats`` one-liner reads
    #: this after each executed statement.
    last: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Time a pipeline stage; records cumulative and last-statement."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.timers.setdefault(stage, Observation()).record(elapsed)
            self.last[stage] = self.last.get(stage, 0.0) + elapsed  # type: ignore[operator]

    def count(self, name: str, by: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + by

    def observe(self, name: str, value: float) -> None:
        self.observations.setdefault(name, Observation()).record(value)

    def begin_statement(self) -> None:
        """Reset the per-statement scratch (one statement is starting)."""
        self.last = {}

    def note_last(self, key: str, value: object) -> None:
        """Attach a non-timer note (e.g. ``cache: hit``) to the statement."""
        self.last[key] = value

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """A JSON-friendly copy of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "timers": {
                name: obs.as_dict() for name, obs in self.timers.items()
            },
            "observations": {
                name: obs.as_dict()
                for name, obs in self.observations.items()
            },
        }

    def summary(self) -> str:
        """A readable multi-line account of the collected metrics."""
        lines = ["metrics:"]
        if self.counters:
            for name in sorted(self.counters):
                lines.append(f"  {name:28s} {self.counters[name]}")
        for name in sorted(self.timers):
            obs = self.timers[name]
            lines.append(
                f"  stage {name:12s} calls={obs.count:6d} "
                f"total={obs.total * 1000.0:9.2f}ms "
                f"mean={obs.mean * 1000.0:7.3f}ms "
                f"p50={obs.percentile(0.50) * 1000.0:7.3f}ms "
                f"p95={obs.percentile(0.95) * 1000.0:7.3f}ms"
            )
        for name in sorted(self.observations):
            obs = self.observations[name]
            lines.append(
                f"  {name:18s} n={obs.count:6d} mean={obs.mean:10.2f} "
                f"min={obs.minimum if obs.minimum is not None else 0:g} "
                f"max={obs.maximum if obs.maximum is not None else 0:g} "
                f"p50={obs.percentile(0.50):g} "
                f"p95={obs.percentile(0.95):g}"
            )
        if len(lines) == 1:
            lines.append("  (nothing recorded)")
        return "\n".join(lines)

    def statement_line(self) -> str:
        """A one-line per-statement report for the REPL's ``--stats``."""
        parts = []
        for stage in ("parse", "normalize", "analyze", "plan", "execute"):
            value = self.last.get(stage)
            if isinstance(value, float):
                parts.append(f"{stage}={value * 1000.0:.2f}ms")
        for key, value in self.last.items():
            if not isinstance(value, float):
                parts.append(f"{key}={value}")
        return "-- " + ("  ".join(parts) if parts else "(no pipeline activity)")

    def reset(self) -> None:
        self.timers.clear()
        self.counters.clear()
        self.observations.clear()
        self.last = {}
