"""Command-line entry point: ``python -m repro.difftest``.

Examples::

    python -m repro.difftest --seed 0 --queries 500
    python -m repro.difftest --queries 200 --sizes tiny --max-depth 4
    python -m repro.difftest --preset joins --queries 200
    python -m repro.difftest --corpus-dir tests/corpus --fail-fast
    python -m repro.difftest --scale --queries 24

Exits non-zero iff the oracle found a disagreement (or a generated query
failed the render→parse round-trip).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

from repro.difftest.grammar import GeneratorConfig
from repro.difftest.runner import run_fuzz
from repro.errors import XsqlError
from repro.workloads.generator import WORKLOAD_PRESETS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest",
        description="Differential fuzzing of the XSQL engines.",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--queries",
        type=int,
        default=500,
        help="total query budget, split across --sizes (default 500)",
    )
    parser.add_argument(
        "--sizes",
        default="tiny,small",
        help="comma-separated workload presets "
        f"(choices: {','.join(WORKLOAD_PRESETS)}, plus scale-<tier>; "
        "default tiny,small)",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="run over seeded scale populations instead of the presets "
        "(shorthand for --sizes scale-1k,scale-10k; single-FROM "
        "grammar is enforced per size so every engine stays linear)",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="max path expression depth (default from GeneratorConfig)",
    )
    parser.add_argument(
        "--preset",
        default="default",
        choices=("default", "joins"),
        help="query-grammar preset: 'joins' biases toward explicit "
        "multi-variable equality joins (default: the balanced mix)",
    )
    parser.add_argument(
        "--corpus-dir",
        type=Path,
        default=None,
        help="save minimized counterexamples here (e.g. tests/corpus)",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first disagreement",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the final summary"
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the oracle session's pipeline metrics per workload",
    )
    args = parser.parse_args(argv)

    try:
        config = (
            GeneratorConfig.joins()
            if args.preset == "joins"
            else GeneratorConfig()
        )
        if args.max_depth is not None:
            config = dataclasses.replace(
                config, max_path_depth=args.max_depth
            )
        sizes = (
            ("scale-1k", "scale-10k")
            if args.scale
            else tuple(
                s.strip() for s in args.sizes.split(",") if s.strip()
            )
        )
        stats = run_fuzz(
            seed=args.seed,
            queries=args.queries,
            sizes=sizes,
            config=config,
            corpus_dir=args.corpus_dir,
            fail_fast=args.fail_fast,
            progress=None
            if args.quiet
            else lambda line: print(line, flush=True),
        )
    except XsqlError as exc:
        parser.error(str(exc))
    print(stats.summary())
    if args.stats:
        for size, report in stats.pipeline_reports.items():
            print(f"pipeline metrics [{size}]:")
            for line in report.splitlines():
                print(f"  {line}")
    return 0 if stats.ok else 1


if __name__ == "__main__":
    sys.exit(main())
