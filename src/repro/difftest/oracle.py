"""The differential oracle: one query, every engine, one verdict.

Engine matrix (see ``docs/DIFFTEST.md``):

========== ============================================= ==================
engine     implementation                                runs when
========== ============================================= ==================
reference  ``Session.query(text, plan="none")``          always
optimized  ``Session.query(text, plan="greedy")``        always
cached     ``Session.prepare(text, plan="greedy")`` run  always
           twice through the LRU statement cache
cost       ``Session.query(text, plan="cost")`` — the    always
           statistics-driven optimizer with index
           probes (may auto-enable indexes), pinned to
           ``join_mode="nested"`` tuple-at-a-time
           execution
hashjoin   ``plan="cost"`` on a second session with      always
           ``join_mode="hash"``: the factored
           HashJoin/SemiJoin operator pipeline
operators  ``Session.query(text, plan="typed")`` — the   always
           Theorem 6.1 coherent plan lowered to
           RestrictedScan operator trees
           (:mod:`repro.xsql.operators`)
naive      :class:`~repro.xsql.evaluator.NaiveEvaluator` substitution space
                                                         below the cap
flogic     Theorem 3.1 translation + F-logic kernel      conjunctive
                                                         fragment only
snapshot   ``store_to_dict``/``store_from_dict`` then    always
           the reference evaluator on the restored store
columnar   ``plan="cost"`` with                          always
           ``batch_format="columnar"`` and ``workers=2``
           on its own session: columnar binding batches
           with morsel-parallel scans
kv         ``encode_store`` into a WAL-backed            always
           :class:`~repro.storage.wal.LogStructuredEngine`,
           close + reopen (a full WAL replay), then
           ``decode_store`` and the reference evaluator
           on the recovered store
fused      ``plan="cost"`` with ``pointer_join="force"`` always
           on its own session: every fusable equality
           conjunct becomes a PointerJoin (forward
           dereference / backward index probe), with a
           materialized view kept in the store so lazy
           view maintenance runs inside the query loop
========== ============================================= ==================

Results are compared as order-insensitive multisets of oid tuples.  XSQL
result relations are duplicate-free sets (§3.3), so the multiset
comparison is a frozenset comparison of rows; the oracle still goes
through :meth:`QueryResult.rows` so a future bag semantics only needs one
change here.  On top of the set comparison, engines that hand back a
:class:`~repro.xsql.result.QueryResult` must also *enumerate* their rows
identically (the Sequence contract: stable order independent of plan and
engine); an order mismatch on equal sets is a disagreement.

An engine ends in one of three states: ``ok`` (rows produced), ``skip``
(outside the engine's fragment — recorded, never a failure), or ``error``
(the engine raised).  A disagreement is an ``ok`` engine whose rows differ
from the reference, or an engine error while the reference succeeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.datamodel.store import ObjectStore
from repro.errors import XsqlError
from repro.flogic import FlogicDatabase, TranslationUnsupported, evaluate, translate
from repro.oid import Oid
from repro.xsql import ast
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_query
from repro.xsql.result import QueryResult
from repro.xsql.session import Session

__all__ = ["EngineOutcome", "OracleReport", "Oracle", "ENGINE_NAMES"]

Rows = FrozenSet[Tuple[Oid, ...]]

ENGINE_NAMES = (
    "reference",
    "optimized",
    "cached",
    "cost",
    "hashjoin",
    "operators",
    "naive",
    "flogic",
    "snapshot",
    "columnar",
    "kv",
    "fused",
)


@dataclass
class EngineOutcome:
    """What one engine did with one query."""

    engine: str
    status: str  # 'ok' | 'skip' | 'error'
    rows: Optional[Rows] = None
    #: The rows as the engine *enumerated* them, for engines that return
    #: a QueryResult (None otherwise) — checked against the reference's
    #: enumeration to pin the Sequence ordering contract.
    ordered: Optional[Tuple[Tuple[Oid, ...], ...]] = None
    detail: str = ""


@dataclass
class OracleReport:
    """The oracle's verdict on one query."""

    text: str
    outcomes: Dict[str, EngineOutcome] = field(default_factory=dict)
    disagreements: List[str] = field(default_factory=list)

    @property
    def reference_failed(self) -> bool:
        ref = self.outcomes.get("reference")
        return ref is None or ref.status != "ok"

    @property
    def agreed(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        lines = [f"query: {self.text}"]
        for name, outcome in self.outcomes.items():
            size = "-" if outcome.rows is None else str(len(outcome.rows))
            lines.append(
                f"  {name:10s} {outcome.status:5s} rows={size} "
                f"{outcome.detail}"
            )
        for item in self.disagreements:
            lines.append(f"  DISAGREE: {item}")
        return "\n".join(lines)


class Oracle:
    """Runs queries over one store through every engine and compares.

    The store is treated as read-only (the fuzzer generates no updates);
    the F-logic export and the serialization round-trip are computed once
    and cached.
    """

    def __init__(
        self,
        store: ObjectStore,
        naive_max_product: int = 20_000,
        naive_enabled: bool = True,
    ) -> None:
        self.store = store
        self.session = Session(store)
        # The "cost" engine stays the tuple-at-a-time nested-loop
        # executor; the "hashjoin" engine runs the same plans through the
        # set-at-a-time executor on its own session, so the two are
        # compared against each other (and everything else) every query.
        self.session.join_mode = "nested"
        self.hash_session = Session(store)
        # The "columnar" engine gets its own session too: its walker memo
        # and restriction-keyed PathWalker cache persist across queries,
        # so the fuzz run also exercises cross-query cache reuse.
        self.columnar_session = Session(store)
        # The "fused" engine forces pointer-join fusion and keeps a
        # materialized view registered on its session, so every query it
        # runs also exercises the lazy view-maintenance sync path.  The
        # enrichment happens before any cached artifact (flogic export,
        # snapshot, kv round-trip) is built, so all engines see one store.
        self.fused_session = Session(store)
        self._enrich_with_view()
        self.naive_max_product = naive_max_product
        self.naive_enabled = naive_enabled
        self._flogic_db: Optional[FlogicDatabase] = None
        self._roundtrip_store: Optional[ObjectStore] = None
        self._kv_store: Optional[ObjectStore] = None
        self._universe_sizes: Optional[Dict[str, int]] = None

    #: The view the fused engine materializes over Figure 1 workloads.
    VIEW_STATEMENT = (
        "CREATE VIEW FusedCompanyCard AS SUBCLASS OF Object "
        "SIGNATURE CardName = String "
        "SELECT CardName = C.Name FROM Company C OID FUNCTION OF C"
    )

    def _enrich_with_view(self) -> None:
        """Materialize a small view on the fused session's store.

        Skipped when the workload has no ``Company`` class (scale
        populations with other schemas).  The view's objects are part of
        the shared store, so every engine — including the serialization
        and WAL round-trips — must agree on queries that touch them.
        """
        from repro.oid import Atom

        if Atom("Company") not in self.store.hierarchy:
            return
        self.fused_session.query(self.VIEW_STATEMENT)

    # ------------------------------------------------------------------
    # cached artifacts
    # ------------------------------------------------------------------

    def _flogic(self) -> FlogicDatabase:
        if self._flogic_db is None:
            self._flogic_db = FlogicDatabase.from_store(self.store)
        return self._flogic_db

    def _roundtrip(self) -> ObjectStore:
        if self._roundtrip_store is None:
            from repro.datamodel.serialize import store_from_dict, store_to_dict

            payload, _report = store_to_dict(self.store)
            self._roundtrip_store = store_from_dict(payload)
        return self._roundtrip_store

    def _kv_roundtrip(self) -> ObjectStore:
        """The store after a full storage-engine crash-recovery cycle.

        Encodes the store into a WAL-backed engine, closes it, reopens
        the directory (which *is* recovery — every committed batch is
        replayed from the CRC-framed log), and decodes the recovered
        key ranges back into a store.  Cached once, like the snapshot
        engine's round-trip.
        """
        if self._kv_store is None:
            import shutil
            import tempfile

            from repro.storage import LogStructuredEngine, decode_store, encode_store

            tmpdir = tempfile.mkdtemp(prefix="xsql-difftest-kv-")
            try:
                engine = LogStructuredEngine(tmpdir, sync="never")
                encode_store(self.store, engine)
                engine.close()
                recovered = LogStructuredEngine(tmpdir, sync="never")
                try:
                    self._kv_store = decode_store(recovered)
                finally:
                    recovered.close()
            finally:
                shutil.rmtree(tmpdir, ignore_errors=True)
        return self._kv_store

    def _universes(self) -> Dict[str, int]:
        if self._universe_sizes is None:
            self._universe_sizes = {
                "individual": len(self.store.individual_universe()),
                "class": len(self.store.class_universe()),
                "method": len(self.store.method_universe()),
            }
        return self._universe_sizes

    # ------------------------------------------------------------------
    # the oracle
    # ------------------------------------------------------------------

    def run(
        self, query: Union[str, ast.Query], engines: Tuple[str, ...] = ENGINE_NAMES
    ) -> OracleReport:
        """Run *query* through the engine matrix and compare results."""
        if isinstance(query, str):
            text = query
            parsed = parse_query(text)
        else:
            parsed = query
            text = str(query)
        if not isinstance(parsed, ast.Query):
            raise XsqlError(
                "the oracle runs plain SELECT queries (no UNION chains)"
            )
        report = OracleReport(text=text)

        runners = {
            "reference": lambda: self.session.query(text, plan="none"),
            "optimized": lambda: self.session.query(text, plan="greedy"),
            "cached": lambda: self._run_cached(text),
            "cost": lambda: self.session.query(text, plan="cost"),
            "hashjoin": lambda: self.hash_session.query(text, plan="cost"),
            "operators": lambda: self.session.query(text, plan="typed"),
            "naive": lambda: NaiveEvaluator(self.store).run(parsed),
            "flogic": lambda: evaluate(self._flogic(), translate(parsed)),
            "snapshot": lambda: Evaluator(self._roundtrip()).run(parsed),
            "columnar": lambda: self.columnar_session.query(
                text, plan="cost", batch_format="columnar", workers=2
            ),
            "kv": lambda: Evaluator(self._kv_roundtrip()).run(parsed),
            "fused": lambda: self.fused_session.query(
                text, plan="cost", pointer_join="force"
            ),
        }
        for name in engines:
            if name not in runners:
                raise XsqlError(f"unknown oracle engine {name!r}")

        for name in engines:
            skip_reason = self._skip_reason(name, parsed)
            if skip_reason is not None:
                report.outcomes[name] = EngineOutcome(
                    engine=name, status="skip", detail=skip_reason
                )
                continue
            try:
                result = runners[name]()
            except TranslationUnsupported as exc:
                report.outcomes[name] = EngineOutcome(
                    engine=name, status="skip", detail=str(exc)
                )
            except XsqlError as exc:
                report.outcomes[name] = EngineOutcome(
                    engine=name,
                    status="error",
                    detail=f"{type(exc).__name__}: {exc}",
                )
            else:
                if isinstance(result, QueryResult):
                    rows: Rows = result.rows()
                    ordered = tuple(result)
                else:
                    rows = result
                    ordered = None
                report.outcomes[name] = EngineOutcome(
                    engine=name, status="ok", rows=rows, ordered=ordered
                )

        self._judge(report)
        return report

    def _run_cached(self, text: str) -> QueryResult:
        """The pipeline-cache engine: prepare once, run twice.

        Exercises the LRU statement cache across the whole fuzz run (the
        oracle's session is persistent, so repeated shapes hit) and
        checks that a :class:`~repro.xsql.pipeline.CompiledQuery` is
        genuinely re-runnable: both executions must agree before the rows
        are handed to the cross-engine judge.
        """
        compiled = self.session.prepare(text, plan="greedy")
        first = compiled.run()
        second = compiled.run()
        if first.rows() != second.rows():
            raise XsqlError(
                "compiled query is not re-runnable: two executions of one "
                "CompiledQuery disagree"
            )
        return first

    def _skip_reason(self, engine: str, parsed: ast.Query) -> Optional[str]:
        if engine != "naive":
            return None
        if not self.naive_enabled:
            return "naive oracle disabled for this store size"
        sizes = self._universes()
        product = 1
        for var in dict.fromkeys(ast.free_variables(parsed)):
            product *= max(1, sizes.get(var.sort.value, sizes["individual"]))
            if product > self.naive_max_product:
                return (
                    f"substitution space exceeds cap "
                    f"({product} > {self.naive_max_product})"
                )
        return None

    def _judge(self, report: OracleReport) -> None:
        reference = report.outcomes.get("reference")
        if reference is None:
            return
        if reference.status != "ok":
            # Nothing to compare against; the runner tracks these.
            return
        assert reference.rows is not None
        for name, outcome in report.outcomes.items():
            if name == "reference":
                continue
            if outcome.status == "error":
                report.disagreements.append(
                    f"{name} errored while reference succeeded: "
                    f"{outcome.detail}"
                )
            elif outcome.status == "ok" and outcome.rows != reference.rows:
                assert outcome.rows is not None
                missing = len(reference.rows - outcome.rows)
                extra = len(outcome.rows - reference.rows)
                report.disagreements.append(
                    f"{name} rows differ from reference "
                    f"(missing {missing}, extra {extra})"
                )
            elif (
                outcome.status == "ok"
                and outcome.ordered is not None
                and reference.ordered is not None
                and outcome.ordered != reference.ordered
            ):
                report.disagreements.append(
                    f"{name} enumerates equal rows in a different order "
                    f"than reference (Sequence contract violated)"
                )
