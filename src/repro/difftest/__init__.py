"""Differential testing of the XSQL engines.

The repo carries four independent implementations of the same declarative
semantics — the production :class:`~repro.xsql.evaluator.Evaluator`, the
literal §3.4 :class:`~repro.xsql.evaluator.NaiveEvaluator`, the Theorem
3.1 F-logic translation, and the greedy-planned variant — plus a
serialization round-trip that must be observationally invisible.  This
package hardens them against each other:

* :mod:`repro.difftest.grammar` — a seeded, grammar-driven generator of
  random well-formed XSQL queries over any schema/catalogue;
* :mod:`repro.difftest.oracle` — runs one query through every engine and
  compares the result relations as order-insensitive multisets;
* :mod:`repro.difftest.shrink` — minimizes failing queries by deleting
  and simplifying AST nodes;
* :mod:`repro.difftest.corpus` — replayable counterexample files under
  ``tests/corpus/`` (the pytest suite replays them deterministically);
* :mod:`repro.difftest.runner` — the fuzz loop behind
  ``python -m repro.difftest``.

See ``docs/DIFFTEST.md`` for the grammar, the oracle matrix, and how to
add a new engine.
"""

from repro.difftest.corpus import CorpusCase, iter_corpus, load_case, save_case
from repro.difftest.grammar import GeneratorConfig, QueryGenerator, SchemaModel
from repro.difftest.oracle import EngineOutcome, Oracle, OracleReport
from repro.difftest.runner import FuzzStats, run_fuzz
from repro.difftest.shrink import shrink_query

__all__ = [
    "CorpusCase",
    "EngineOutcome",
    "FuzzStats",
    "GeneratorConfig",
    "Oracle",
    "OracleReport",
    "QueryGenerator",
    "SchemaModel",
    "iter_corpus",
    "load_case",
    "run_fuzz",
    "save_case",
    "shrink_query",
]
