"""Replayable counterexample corpus for the differential fuzzer.

Every disagreement the fuzzer finds is minimized (:mod:`.shrink`) and
persisted as a small JSON file under ``tests/corpus/``.  A corpus case is
fully self-contained — the query's concrete syntax plus the workload
configuration that rebuilds the exact store — so replay needs no fuzzer
state: ``tests/difftest/test_corpus.py`` regenerates the store, runs the
oracle, and asserts the engines agree again.  A case therefore starts
life as a bug report and is checked in as a regression test once fixed.

File layout::

    {
      "description": "flogic drops rows for ...",
      "query": "SELECT X FROM Person X WHERE ...",
      "workload": {"preset": "tiny"} | {"n_people": 6, ...},
      "found_by": {"seed": 0, "index": 37, "disagreements": [...]}
    }
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.datamodel.store import ObjectStore
from repro.workloads.generator import (
    WORKLOAD_PRESETS,
    WorkloadConfig,
    generate_database,
)
from repro.workloads.scale import ScaleSpec, generate_scaled

#: A case's store is rebuilt from either a synthetic workload config or
#: a scale-population spec (the difftest ``--scale`` runs).
AnyWorkload = Union[WorkloadConfig, ScaleSpec]

__all__ = [
    "CorpusCase",
    "save_case",
    "load_case",
    "iter_corpus",
    "workload_from_dict",
    "workload_to_dict",
]


def workload_to_dict(config: AnyWorkload) -> Dict:
    """Serialize a workload config, preferring a preset name."""
    if isinstance(config, ScaleSpec):
        payload = config.as_dict()
        payload.pop("counts", None)  # derived, not a constructor arg
        return {"scale": payload}
    for name, preset in WORKLOAD_PRESETS.items():
        if preset == config:
            return {"preset": name}
    return dataclasses.asdict(config)


def workload_from_dict(payload: Dict) -> AnyWorkload:
    if "scale" in payload:
        return ScaleSpec(**payload["scale"])
    if "preset" in payload:
        return WORKLOAD_PRESETS[payload["preset"]]
    return WorkloadConfig(**payload)


@dataclass
class CorpusCase:
    """One persisted counterexample (or regression) case."""

    description: str
    query: str
    workload: AnyWorkload = field(
        default_factory=lambda: WORKLOAD_PRESETS["tiny"]
    )
    found_by: Dict = field(default_factory=dict)

    def build_store(self) -> ObjectStore:
        """Rebuild the exact store the case was found on."""
        if isinstance(self.workload, ScaleSpec):
            return generate_scaled(self.workload)
        return generate_database(self.workload)

    def to_dict(self) -> Dict:
        return {
            "description": self.description,
            "query": self.query,
            "workload": workload_to_dict(self.workload),
            "found_by": self.found_by,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "CorpusCase":
        return cls(
            description=payload["description"],
            query=payload["query"],
            workload=workload_from_dict(payload.get("workload", {})),
            found_by=payload.get("found_by", {}),
        )

    def slug(self) -> str:
        """A stable filename stem derived from the case content."""
        digest = hashlib.sha1(
            f"{self.query}|{workload_to_dict(self.workload)}".encode()
        ).hexdigest()[:10]
        return f"case-{digest}"


def save_case(
    case: CorpusCase, directory: Path, name: Optional[str] = None
) -> Path:
    """Write *case* under *directory*; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name or case.slug()}.json"
    path.write_text(json.dumps(case.to_dict(), indent=2) + "\n")
    return path


def load_case(path: Path) -> CorpusCase:
    return CorpusCase.from_dict(json.loads(Path(path).read_text()))


def iter_corpus(directory: Path) -> Iterator[Path]:
    """Corpus files under *directory*, sorted for stable test ordering."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path
