"""Greedy AST shrinking for failing fuzzer queries.

Raw generated counterexamples are noisy: three conjuncts, two FROM
declarations, and a three-hop path when the actual bug needs one
comparison.  :func:`shrink_query` minimizes a query while a caller-supplied
predicate (usually "the oracle still disagrees") keeps holding, by
repeatedly trying single structural edits in decreasing order of
aggressiveness:

* drop the entire WHERE clause;
* drop a WHERE conjunct / collapse a disjunction to one branch / unwrap a
  negation;
* drop a SELECT item or an unused FROM declaration;
* strip quantifiers from a comparison, demote an aggregate to its path,
  shrink a set literal;
* truncate trailing path steps and drop selectors.

Each accepted edit restarts the scan (greedy descent), so the result is a
local minimum: no single further edit keeps the predicate true.  Every
candidate is validated by a render→parse round-trip and the *reparsed*
query is what the predicate sees, so the minimized form is always
replayable from its concrete syntax.
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional, Set

from repro.errors import XsqlError
from repro.xsql import ast
from repro.xsql.parser import parse_query

__all__ = ["shrink_query"]

Predicate = Callable[[ast.Query], bool]


def shrink_query(
    query: ast.Query, predicate: Predicate, max_attempts: int = 2000
) -> ast.Query:
    """Return a locally minimal query for which *predicate* still holds.

    *predicate* must hold for *query* itself (this is not checked — a
    predicate that fails on the input simply yields the input back).
    Predicate exceptions are treated as "does not hold".
    """
    current = query
    seen: Set[str] = {str(query)}
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for candidate in _query_variants(current):
            text = str(candidate)
            if text in seen:
                continue
            seen.add(text)
            attempts += 1
            if attempts >= max_attempts:
                break
            reparsed = _reparse(text)
            if reparsed is None:
                continue
            try:
                holds = predicate(reparsed)
            except Exception:
                holds = False
            if holds:
                current = reparsed
                improved = True
                break
    return current


def _reparse(text: str) -> Optional[ast.Query]:
    try:
        parsed = parse_query(text)
    except XsqlError:
        return None
    return parsed if isinstance(parsed, ast.Query) else None


# ----------------------------------------------------------------------
# candidate edits
# ----------------------------------------------------------------------


def _query_variants(query: ast.Query) -> Iterator[ast.Query]:
    # Biggest deletions first: greedy descent converges faster when a
    # whole clause can go in one step.
    if query.where is not None:
        yield ast.Query(select=query.select, from_=query.from_, where=None)
        for cond in _cond_variants(query.where):
            yield ast.Query(
                select=query.select, from_=query.from_, where=cond
            )
    if len(query.select) > 1:
        for index in range(len(query.select)):
            select = query.select[:index] + query.select[index + 1 :]
            yield ast.Query(
                select=select, from_=query.from_, where=query.where
            )
    for index in range(len(query.from_)):
        from_ = query.from_[:index] + query.from_[index + 1 :]
        yield ast.Query(select=query.select, from_=from_, where=query.where)
    for index, item in enumerate(query.select):
        if not isinstance(item, ast.PathItem):
            continue
        for p in _path_variants(item.path):
            select = (
                query.select[:index]
                + (ast.PathItem(path=p, name=item.name),)
                + query.select[index + 1 :]
            )
            yield ast.Query(
                select=select, from_=query.from_, where=query.where
            )


def _cond_variants(cond: ast.Cond) -> Iterator[ast.Cond]:
    if isinstance(cond, ast.AndCond):
        for index in range(len(cond.items)):
            rest = cond.items[:index] + cond.items[index + 1 :]
            yield rest[0] if len(rest) == 1 else ast.AndCond(rest)
        for index, item in enumerate(cond.items):
            for sub in _cond_variants(item):
                items = cond.items[:index] + (sub,) + cond.items[index + 1 :]
                yield ast.AndCond(items)
    elif isinstance(cond, ast.OrCond):
        for item in cond.items:
            yield item
        for index, item in enumerate(cond.items):
            for sub in _cond_variants(item):
                items = cond.items[:index] + (sub,) + cond.items[index + 1 :]
                yield ast.OrCond(items)
    elif isinstance(cond, ast.NotCond):
        yield cond.item
        for sub in _cond_variants(cond.item):
            yield ast.NotCond(sub)
    elif isinstance(cond, ast.Comparison):
        if cond.lq is not None or cond.rq is not None:
            yield ast.Comparison(
                lhs=cond.lhs, op=cond.op, rhs=cond.rhs, lq=None, rq=None
            )
        for lhs in _operand_variants(cond.lhs):
            yield ast.Comparison(
                lhs=lhs, op=cond.op, rhs=cond.rhs, lq=cond.lq, rq=cond.rq
            )
        for rhs in _operand_variants(cond.rhs):
            yield ast.Comparison(
                lhs=cond.lhs, op=cond.op, rhs=rhs, lq=cond.lq, rq=cond.rq
            )
    elif isinstance(cond, ast.PathCond):
        for p in _path_variants(cond.path):
            yield ast.PathCond(p)


def _operand_variants(op: ast.Operand) -> Iterator[ast.Operand]:
    if isinstance(op, ast.PathOperand):
        for p in _path_variants(op.path):
            yield ast.PathOperand(p)
    elif isinstance(op, ast.AggOperand):
        yield ast.PathOperand(op.path)
        for p in _path_variants(op.path):
            yield ast.AggOperand(op.fn, p)
    elif isinstance(op, ast.SetLitOperand):
        if len(op.values) > 1:
            for index in range(len(op.values)):
                values = op.values[:index] + op.values[index + 1 :]
                yield ast.SetLitOperand(values)


def _path_variants(path: ast.PathExpr) -> Iterator[ast.PathExpr]:
    if path.steps:
        yield ast.PathExpr(head=path.head, steps=path.steps[:-1])
    for index, s in enumerate(path.steps):
        if s.selector is not None:
            steps = (
                path.steps[:index]
                + (ast.Step(method_expr=s.method_expr, selector=None),)
                + path.steps[index + 1 :]
            )
            yield ast.PathExpr(head=path.head, steps=steps)
