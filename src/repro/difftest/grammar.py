"""Seeded, grammar-driven generation of random well-formed XSQL queries.

The generator is schema-directed: it introspects an
:class:`~repro.datamodel.store.ObjectStore` catalogue into a
:class:`SchemaModel` (classes, visible attribute signatures, extent sizes,
sampled literal values) and then grows queries whose paths follow declared
signatures, so most queries return non-empty answers instead of dying on
the first hop.

Design constraints, chosen so every engine of the oracle can run the
output:

* **Range restriction.**  Variables appear in a *binding* position (a
  FROM declaration or a path selector of an earlier conjunct) before any
  comparison uses them; comparison operand paths carry no fresh
  variables.  This keeps the production evaluator from enumerating sort
  universes and keeps the F-logic translation's builtin atoms ground.
* **Total operators.**  Aggregates are limited to ``count``/``sum``
  (total on the empty set); ``avg``/``min``/``max`` raise on empty sets,
  which would make the observable outcome depend on evaluation order.
* **No side effects.**  ``UPDATE`` conjuncts, object-creating queries,
  and path variables (``*Y``) are never generated; the first two mutate,
  the last is outside both the naive and the F-logic fragments.

Determinism: query *i* of seed *s* is drawn from ``random.Random(f"{s}:{i}")``,
so any query can be regenerated from ``(seed, index)`` alone.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datamodel.store import ObjectStore
from repro.errors import XsqlError
from repro.oid import Atom, Oid, Value, Variable
from repro.xsql import ast, build

__all__ = ["AttrInfo", "SchemaModel", "GeneratorConfig", "QueryGenerator"]

_NUMERAL_CLASSES = {"Numeral", "Integer", "Real"}
_STRING_CLASSES = {"String"}


@dataclass(frozen=True)
class AttrInfo:
    """One visible 0-ary attribute of a class."""

    name: str
    result: str
    set_valued: bool

    @property
    def is_numeric(self) -> bool:
        return self.result in _NUMERAL_CLASSES

    @property
    def is_string(self) -> bool:
        return self.result in _STRING_CLASSES

    @property
    def is_scalar_literal(self) -> bool:
        return self.is_numeric or self.is_string


class SchemaModel:
    """The generator's view of a store: classes, attributes, samples."""

    def __init__(
        self,
        attrs: Dict[str, List[AttrInfo]],
        extent_sizes: Dict[str, int],
        samples: Dict[str, List[Oid]],
    ) -> None:
        #: class name -> visible (inherited) 0-ary attribute signatures
        self.attrs = attrs
        #: class name -> number of instances (incl. subclass instances)
        self.extent_sizes = extent_sizes
        #: attribute name -> sampled stored values (literals and oids)
        self.samples = samples

    @classmethod
    def from_store(cls, store: ObjectStore, max_samples: int = 12) -> "SchemaModel":
        attrs: Dict[str, List[AttrInfo]] = {}
        extent_sizes: Dict[str, int] = {}
        for class_atom in store.hierarchy.classes():
            name = class_atom.name
            if name == "Object":
                continue
            seen: Dict[str, AttrInfo] = {}
            for signature in store.signatures_of(class_atom):
                if signature.arity != 0:
                    continue
                info = AttrInfo(
                    name=signature.method.name,
                    result=signature.result.name,
                    set_valued=signature.set_valued,
                )
                # Keep the most specific declaration per attribute name.
                seen.setdefault(info.name, info)
            attrs[name] = sorted(seen.values(), key=lambda a: a.name)
            extent_sizes[name] = len(store.extent(class_atom))
        samples: Dict[str, List[Oid]] = {}
        for record in store.iter_records():
            for (method, args), cell in record.entries():
                if args:
                    continue
                bucket = samples.setdefault(method.name, [])
                for value in sorted(cell.as_set(), key=str):
                    if len(bucket) < max_samples and value not in bucket:
                        bucket.append(value)
        return cls(attrs, extent_sizes, samples)

    # ------------------------------------------------------------------

    def populated_classes(self) -> List[str]:
        """Classes with a non-empty extent and at least one attribute."""
        return sorted(
            name
            for name, infos in self.attrs.items()
            if infos and self.extent_sizes.get(name, 0) > 0
        )

    def class_names(self) -> List[str]:
        return sorted(self.attrs)

    def attrs_of(self, cls: str) -> List[AttrInfo]:
        return self.attrs.get(cls, [])


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the query grammar."""

    max_path_depth: int = 3
    max_from: int = 2
    max_conjuncts: int = 3
    max_select: int = 2
    #: probability that a generated query has a WHERE clause at all
    p_where: float = 0.9
    #: probability that a FROM-less schema-browsing query is generated
    p_schema_query: float = 0.05
    #: per-conjunct kind weights (renormalized over the applicable kinds)
    weights: Tuple[Tuple[str, float], ...] = (
        ("path", 0.30),
        ("numeric", 0.22),
        ("join", 0.12),
        ("schema", 0.10),
        ("aggregate", 0.10),
        ("membership", 0.06),
        ("quantified", 0.06),
        ("negation", 0.02),
        ("disjunction", 0.02),
    )

    def __post_init__(self) -> None:
        for knob in ("max_path_depth", "max_from", "max_conjuncts", "max_select"):
            if getattr(self, knob) < 1:
                raise XsqlError(f"GeneratorConfig.{knob} must be >= 1")

    @classmethod
    def joins(cls) -> "GeneratorConfig":
        """A preset biased toward explicit joins (examples (12)–(13)).

        Every query gets a WHERE clause, up to three FROM declarations
        feed multi-variable equality comparisons, and the conjunct mix
        leans heavily on the shapes the set-at-a-time executor turns
        into hash/semi joins — plus enough quantified/membership salt to
        keep its nested-loop fallback under fire.
        """
        return cls(
            max_from=3,
            p_where=1.0,
            p_schema_query=0.0,
            weights=(
                ("join", 0.55),
                ("path", 0.20),
                ("numeric", 0.10),
                ("quantified", 0.06),
                ("membership", 0.05),
                ("aggregate", 0.04),
            ),
        )


@dataclass
class _Scope:
    """Bound variables and their (syntactic) classes while generating."""

    classes: Dict[Variable, str] = field(default_factory=dict)
    fresh_counter: int = 0

    def bind(self, var: Variable, cls: str) -> None:
        self.classes[var] = cls

    def bound_vars(self) -> List[Variable]:
        return list(self.classes)

    def fresh_var(self) -> Variable:
        self.fresh_counter += 1
        return build.ivar(f"R{self.fresh_counter}")


class QueryGenerator:
    """Draws random well-formed queries over a :class:`SchemaModel`."""

    _FROM_VARS = ("X", "Y", "Z", "X1", "Y1")

    def __init__(
        self,
        schema: SchemaModel,
        config: GeneratorConfig = GeneratorConfig(),
        seed: int = 0,
    ) -> None:
        self.schema = schema
        self.config = config
        self.seed = seed

    # ------------------------------------------------------------------

    def generate(self, index: int) -> ast.Query:
        """The *index*-th query of this seed (deterministic)."""
        rng = random.Random(f"{self.seed}:{index}")
        if rng.random() < self.config.p_schema_query:
            return self._schema_query(rng)
        return self._data_query(rng)

    def generate_many(self, count: int, start: int = 0) -> List[ast.Query]:
        return [self.generate(start + i) for i in range(count)]

    # ------------------------------------------------------------------
    # schema-browsing queries (FROM-less, class variables)
    # ------------------------------------------------------------------

    def _schema_query(self, rng: random.Random) -> ast.Query:
        classes = self.schema.class_names()
        anchor = rng.choice(classes)
        cls_var = build.cvar("C1")
        if rng.random() < 0.5:
            cond = build.schema_cond("subclassOf", Atom(anchor), cls_var)
        else:
            cond = build.schema_cond("subclassOf", cls_var, Atom(anchor))
        return build.query(select=[cls_var], where=cond)

    # ------------------------------------------------------------------
    # data queries
    # ------------------------------------------------------------------

    def _data_query(self, rng: random.Random) -> ast.Query:
        scope = _Scope()
        populated = self.schema.populated_classes()
        n_from = rng.randint(1, self.config.max_from)
        decls = []
        for var_name in self._FROM_VARS[:n_from]:
            cls = rng.choice(populated)
            var = build.ivar(var_name)
            scope.bind(var, cls)
            decls.append(build.from_decl(cls, var))

        conjuncts: List[ast.Cond] = []
        if rng.random() < self.config.p_where:
            n_conj = rng.randint(1, self.config.max_conjuncts)
            for _ in range(n_conj):
                cond = self._condition(rng, scope)
                if cond is not None:
                    conjuncts.append(cond)

        select = self._select_items(rng, scope)
        where = build.conj(*conjuncts) if conjuncts else None
        return build.query(select=select, from_=decls, where=where)

    # ------------------------------------------------------------------
    # conditions
    # ------------------------------------------------------------------

    def _condition(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        kinds = [k for k, _ in self.config.weights]
        weights = [w for _, w in self.config.weights]
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        maker = {
            "path": self._path_cond,
            "numeric": self._numeric_comparison,
            "join": self._join_comparison,
            "schema": self._schema_cond,
            "aggregate": self._aggregate_comparison,
            "membership": self._membership_comparison,
            "quantified": self._quantified_comparison,
            "negation": self._negation,
            "disjunction": self._disjunction,
        }[kind]
        cond = maker(rng, scope)
        if cond is None:
            # Fall back to the always-applicable kind.
            cond = self._path_cond(rng, scope)
        return cond

    def _anchor(self, rng: random.Random, scope: _Scope) -> Tuple[Variable, str]:
        var = rng.choice(sorted(scope.classes, key=lambda v: v.name))
        return var, scope.classes[var]

    def _walk_attrs(
        self,
        rng: random.Random,
        cls: str,
        depth: int,
        want: Optional[str] = None,
    ) -> Optional[List[AttrInfo]]:
        """A random attribute chain from *cls*, optionally ending at a
        numeric/string/set-valued attribute (``want``)."""
        chain: List[AttrInfo] = []
        current = cls
        for hop in range(depth):
            infos = self.schema.attrs_of(current)
            if not infos:
                break
            last_hop = hop == depth - 1
            if last_hop and want == "numeric":
                candidates = [a for a in infos if a.is_numeric]
            elif last_hop and want == "string":
                candidates = [a for a in infos if a.is_string]
            elif last_hop and want == "set":
                candidates = [a for a in infos if a.set_valued]
            else:
                candidates = infos
            if not candidates:
                # Try to keep walking through an object-valued attribute.
                candidates = [
                    a for a in infos if a.result in self.schema.attrs
                ]
                if not candidates or last_hop:
                    return None
            chain.append(rng.choice(candidates))
            current = chain[-1].result
        if not chain:
            return None
        if want == "numeric" and not chain[-1].is_numeric:
            return None
        if want == "string" and not chain[-1].is_string:
            return None
        if want == "set" and not chain[-1].set_valued:
            return None
        return chain

    def _chain_path(
        self,
        var: Variable,
        chain: Sequence[AttrInfo],
        tail_selector: Optional[object] = None,
    ) -> ast.PathExpr:
        steps = [build.step(info.name) for info in chain[:-1]]
        steps.append(build.step(chain[-1].name, tail_selector))
        return ast.PathExpr(head=var, steps=tuple(steps))

    def _literal_for(
        self, rng: random.Random, attr: AttrInfo
    ) -> Optional[Oid]:
        samples = [
            v
            for v in self.schema.samples.get(attr.name, [])
            if isinstance(v, Value)
        ]
        if attr.is_numeric:
            numeric = [
                v
                for v in samples
                if isinstance(v.value, (int, float))
                and not isinstance(v.value, bool)
            ]
            if numeric and rng.random() < 0.8:
                base = rng.choice(numeric).value
                # The operand grammar has no unary minus, so keep
                # jittered literals non-negative to stay parseable.
                return Value(max(0, int(base) + rng.choice((-5, -1, 0, 0, 1, 7))))
            return Value(rng.randint(0, 100))
        if attr.is_string:
            if samples and rng.random() < 0.8:
                return rng.choice(samples)
            return Value("nosuchvalue")
        return None

    # -- condition kinds ------------------------------------------------

    def _path_cond(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        var, cls = self._anchor(rng, scope)
        depth = rng.randint(1, self.config.max_path_depth)
        chain = self._walk_attrs(rng, cls, depth)
        if chain is None:
            return None
        tail = chain[-1]
        selector: Optional[object] = None
        roll = rng.random()
        if roll < 0.45:
            # Bind a fresh variable at the tail (available to later
            # conjuncts and SELECT — this is how joins chain).
            fresh = scope.fresh_var()
            scope.bind(fresh, tail.result)
            selector = fresh
        elif roll < 0.70 and tail.is_scalar_literal:
            selector = self._literal_for(rng, tail)
        return build.path_cond(self._chain_path(var, chain, selector))

    def _numeric_comparison(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        var, cls = self._anchor(rng, scope)
        chain = self._walk_attrs(
            rng, cls, rng.randint(1, self.config.max_path_depth), "numeric"
        )
        if chain is None:
            return None
        op = rng.choice(("=", "!=", "<", "<=", ">", ">="))
        literal = self._literal_for(rng, chain[-1])
        return build.compare(self._chain_path(var, chain), op, literal)

    def _quantified_comparison(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        var, cls = self._anchor(rng, scope)
        chain = self._walk_attrs(
            rng, cls, rng.randint(1, self.config.max_path_depth), "numeric"
        )
        if chain is None:
            return None
        op = rng.choice(("<", "<=", ">", ">=", "=", "!="))
        lq = rng.choice(("some", "all", None))
        rq = rng.choice(("some", "all", None)) if lq is None else None
        literal = self._literal_for(rng, chain[-1])
        return build.compare(
            self._chain_path(var, chain), op, literal, lq=lq, rq=rq
        )

    def _join_comparison(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        """Two paths compared on equality — an explicit value join."""
        bound = sorted(scope.classes.items(), key=lambda kv: kv[0].name)
        rng.shuffle(bound)
        for (lvar, lcls) in bound:
            for (rvar, rcls) in bound:
                lchain = self._walk_attrs(rng, lcls, rng.randint(1, 2))
                rchain = self._walk_attrs(rng, rcls, rng.randint(1, 2))
                if lchain is None or rchain is None:
                    continue
                if lchain[-1].result != rchain[-1].result:
                    continue
                if (lvar, [a.name for a in lchain]) == (
                    rvar,
                    [a.name for a in rchain],
                ):
                    continue  # trivially reflexive
                op = "=" if rng.random() < 0.8 else "!="
                return build.compare(
                    self._chain_path(lvar, lchain),
                    op,
                    self._chain_path(rvar, rchain),
                    rq="some" if rng.random() < 0.5 else None,
                )
        return None

    def _schema_cond(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        classes = self.schema.class_names()
        if rng.random() < 0.5:
            var, _cls = self._anchor(rng, scope)
            return build.schema_cond("instanceOf", var, rng.choice(classes))
        left, right = rng.choice(classes), rng.choice(classes)
        return build.schema_cond("subclassOf", Atom(left), Atom(right))

    def _aggregate_comparison(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        var, cls = self._anchor(rng, scope)
        if rng.random() < 0.6:
            chain = self._walk_attrs(rng, cls, 1, "set")
            fn = "count"
        else:
            chain = self._walk_attrs(rng, cls, rng.randint(1, 2), "numeric")
            fn = rng.choice(("count", "sum"))
        if chain is None:
            return None
        op = rng.choice((">", ">=", "<", "<=", "="))
        bound = rng.randint(0, 4) if fn == "count" else rng.randint(0, 200000)
        return build.compare(
            build.agg(fn, self._chain_path(var, chain)), op, bound
        )

    def _membership_comparison(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        var, cls = self._anchor(rng, scope)
        chain = self._walk_attrs(
            rng, cls, rng.randint(1, self.config.max_path_depth), "string"
        )
        if chain is None:
            return None
        pool = [
            self._literal_for(rng, chain[-1])
            for _ in range(rng.randint(1, 3))
        ]
        values = tuple(dict.fromkeys(v for v in pool if v is not None))
        if not values:
            return None
        return build.compare(
            self._chain_path(var, chain), "=", ast.SetLitOperand(values)
        )

    def _negation(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        inner = self._numeric_comparison(rng, scope) or self._schema_cond(
            rng, scope
        )
        if inner is None:
            return None
        return build.neg(inner)

    def _disjunction(
        self, rng: random.Random, scope: _Scope
    ) -> Optional[ast.Cond]:
        left = self._numeric_comparison(rng, scope)
        right = self._numeric_comparison(rng, scope) or self._schema_cond(
            rng, scope
        )
        if left is None or right is None or left == right:
            return None
        return build.disj(left, right)

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------

    def _select_items(
        self, rng: random.Random, scope: _Scope
    ) -> List[ast.SelectItem]:
        items: List[ast.SelectItem] = []
        n_items = rng.randint(1, self.config.max_select)
        candidates = sorted(scope.classes, key=lambda v: v.name)
        for _ in range(n_items):
            var = rng.choice(candidates)
            if rng.random() < 0.4:
                chain = self._walk_attrs(
                    rng, scope.classes[var], rng.randint(1, 2)
                )
                if chain is not None:
                    items.append(
                        build.select_item(self._chain_path(var, chain))
                    )
                    continue
            items.append(build.select_item(var))
        # Deduplicate identical items (they add no information).
        unique = list(dict.fromkeys(items))
        return unique
