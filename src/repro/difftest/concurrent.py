"""Concurrent snapshot-isolation fuzzer: writer vs pinned readers.

The CI gate behind the MVCC layer's isolation claim::

    python -m repro.difftest.concurrent --seed 11 --ops 300 --readers 3

The harness seeds a small Person/Employee database, then runs one
*writer* thread applying a deterministic stream of data-plane mutations
(object churn, attribute writes, membership flips, purges, relation
inserts) against the live :class:`~repro.datamodel.store.ObjectStore`
while ``--readers`` *reader* threads repeatedly take snapshot sessions
(:meth:`Session.snapshot_view`), run queries from a fixed pool against
their pinned version, and record ``(pinned ticket, query, rows)``.

The oracle is *serial replay*: mutation tickets advance deterministically
(one era per top-level mutator call, pins never advance them), so the
op stream is generated once against a scratch store, capturing the
ticket reached after each op.  A reader pinned at ticket ``t`` must see
exactly the state ``seed + ops[0..j]`` where ``j`` is the last op whose
ticket is ``<= t`` — the verification pass rebuilds that prefix in a
fresh single-threaded store, runs the same query, and compares rows
bit-for-bit.  Any disagreement is a broken snapshot (a torn read, a
leaked post-pin write, or a lost pre-image) and fails the process.

Writers only perform data-plane ops: concurrent DDL with active pins is
a documented best-effort limitation of the schema-image mechanism (see
``docs/MVCC.md``), so the fuzzer holds the schema fixed after seeding.
"""

from __future__ import annotations

import argparse
import random
import sys
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.oid import Atom, Value

__all__ = [
    "ConcurrentStats",
    "QUERIES",
    "apply_op",
    "generate_ops",
    "run_fuzz",
    "seed_store",
    "main",
]

#: Fixed query pool readers draw from; every query is plan-independent
#: (rows compare equal whatever access path answers them).
QUERIES = (
    "SELECT X.Name FROM Person X WHERE X.Age > 40",
    "SELECT X FROM Employee X",
    "SELECT X.Name, X.Age FROM Person X WHERE X.Age < 100",
    "SELECT X.Name FROM Employee X WHERE X.Salary > 5000",
    "SELECT X FROM Person X WHERE X.Friend[Y] and Y.Age > 30",
)

#: An op is a plain tuple ``(kind, *payload)`` — picklable, printable,
#: and applied identically on the live and the replay side.
Op = Tuple


def seed_store(store) -> None:
    """Schema + starting population (identical on both sides)."""
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Person", "Friend", "Person")
    store.declare_signature("Employee", "Salary", "Numeral")
    store.declare_relation("Likes", ["who", "what"])
    for i in range(8):
        name = f"s{i}"
        store.create_object(
            Atom(name), ["Employee" if i % 3 == 0 else "Person"]
        )
        store.set_attr(Atom(name), "Name", f"Seed {i}")
        store.set_attr(Atom(name), "Age", 25 + i * 5)
        if i % 3 == 0:
            store.set_attr(Atom(name), "Salary", 2000 * (i + 1))


def apply_op(store, op: Op) -> None:
    """Apply one mutation op; raises if the op is invalid on *store*."""
    kind = op[0]
    if kind == "create":
        _kind, name, classes = op
        store.create_object(Atom(name), list(classes))
    elif kind == "set":
        _kind, name, method, value = op
        store.set_attr(Atom(name), method, value)
    elif kind == "set_ref":
        _kind, name, method, target = op
        store.set_attr(Atom(name), method, Atom(target))
    elif kind == "unset":
        _kind, name, method = op
        store.unset_attr(Atom(name), method)
    elif kind == "add_instance":
        _kind, name, cls = op
        store.add_instance(Atom(name), cls)
    elif kind == "remove_instance":
        _kind, name, cls = op
        store.remove_instance(Atom(name), cls)
    elif kind == "purge":
        store.purge_object(Atom(op[1]))
    elif kind == "insert_tuple":
        _kind, name, who, what = op
        store.insert_tuple(name, [Atom(who), Value(what)])
    else:  # pragma: no cover - ops are built by generate_ops only
        raise ValueError(f"unknown fuzz op {kind!r}")


def generate_ops(seed: int, count: int) -> Tuple[List[Op], List[int]]:
    """Deterministic op stream plus the ticket reached after each op.

    Candidate ops are drawn from a seeded RNG and *applied to a scratch
    store* as they are generated: ops that raise (a purge of an already
    purged object, a double membership) are discarded, so the surviving
    stream is valid by construction and the scratch store's ticket after
    each op is exactly the ticket the live store will reach.
    """
    from repro.datamodel.store import ObjectStore

    rng = random.Random(seed)
    scratch = ObjectStore()
    seed_store(scratch)
    names = [f"s{i}" for i in range(8)]
    fresh = 0
    ops: List[Op] = []
    tickets: List[int] = []
    while len(ops) < count:
        roll = rng.random()
        if roll < 0.18:
            name = f"w{fresh}"
            fresh += 1
            classes = ["Employee"] if rng.random() < 0.4 else ["Person"]
            op: Op = ("create", name, tuple(classes))
            names.append(name)
        elif roll < 0.45:
            op = ("set", rng.choice(names), "Age", rng.randrange(18, 80))
        elif roll < 0.58:
            op = ("set", rng.choice(names), "Name", f"N{rng.randrange(99)}")
        elif roll < 0.66:
            op = ("set", rng.choice(names), "Salary", rng.randrange(1, 20) * 1000)
        elif roll < 0.72:
            op = ("set_ref", rng.choice(names), "Friend", rng.choice(names))
        elif roll < 0.78:
            op = ("unset", rng.choice(names), rng.choice(["Age", "Friend"]))
        elif roll < 0.84:
            op = ("add_instance", rng.choice(names), "Employee")
        elif roll < 0.89:
            op = ("remove_instance", rng.choice(names), "Employee")
        elif roll < 0.94:
            op = ("insert_tuple", "Likes", rng.choice(names), f"t{rng.randrange(40)}")
        else:
            op = ("purge", rng.choice(names))
        try:
            apply_op(scratch, op)
        except Exception:
            if op[0] == "create":
                names.pop()
            continue
        if op[0] == "purge":
            names.remove(op[1])
        ops.append(op)
        tickets.append(scratch.version.ticket)
    return ops, tickets


@dataclass
class ConcurrentStats:
    """Outcome of one fuzz run (mirrors the single-threaded FuzzStats)."""

    ops: int = 0
    readers: int = 0
    observations: int = 0
    snapshots: int = 0
    disagreements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        verdict = "OK" if self.ok else "FAIL"
        return (
            f"concurrent fuzz: {self.ops} op(s), {self.readers} reader(s), "
            f"{self.snapshots} snapshot(s), {self.observations} "
            f"observation(s), {len(self.disagreements)} disagreement(s) "
            f"[{verdict}]"
        )


def _rows(session, source: str) -> List[str]:
    return sorted(repr(row) for row in session.query(source).rows())


def run_fuzz(
    seed: int = 11,
    ops: int = 300,
    readers: int = 3,
    queries_per_reader: int = 10,
) -> ConcurrentStats:
    """One full fuzz round: concurrent run, then serial verification."""
    from repro.datamodel.store import ObjectStore
    from repro.xsql.session import Session

    stream, tickets = generate_ops(seed, ops)

    live = ObjectStore()
    seed_store(live)
    base = Session(live)
    stats = ConcurrentStats(ops=len(stream), readers=readers)

    # (pinned ticket, query source, rows seen through the snapshot)
    observations: List[Tuple[int, str, List[str]]] = []
    obs_lock = threading.Lock()
    writer_done = threading.Event()
    errors: List[BaseException] = []

    def writer() -> None:
        try:
            for op in stream:
                apply_op(live, op)
        except BaseException as exc:  # pragma: no cover - fuzz guard
            errors.append(exc)
        finally:
            writer_done.set()

    def reader(index: int) -> None:
        rng = random.Random(seed * 1009 + index)
        try:
            done = 0
            while done < queries_per_reader:
                with base.snapshot_view() as snap:
                    source = rng.choice(QUERIES)
                    seen = _rows(snap, source)
                    # Read twice through the same pin: the snapshot
                    # itself must be stable while the writer commits.
                    again = _rows(snap, source)
                    with obs_lock:
                        stats.snapshots += 1
                        if seen != again:
                            stats.disagreements.append(
                                f"unstable snapshot at ticket "
                                f"{snap.version.ticket}: {source}"
                            )
                        observations.append(
                            (snap.version.ticket, source, seen)
                        )
                done += 1
                if writer_done.is_set() and done >= queries_per_reader:
                    break
        except BaseException as exc:  # pragma: no cover - fuzz guard
            errors.append(exc)

    threads = [threading.Thread(target=writer, name="fuzz-writer")]
    threads += [
        threading.Thread(target=reader, args=(i,), name=f"fuzz-reader-{i}")
        for i in range(readers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    base.close()
    if errors:
        stats.disagreements.append(f"thread raised: {errors[0]!r}")
        return stats

    # Serial replay oracle: walk observations in ticket order over one
    # incrementally advanced replay store.
    observations.sort(key=lambda entry: entry[0])
    replay = ObjectStore()
    seed_store(replay)
    oracle = Session(replay)
    applied = 0
    for pinned, source, seen in observations:
        while applied < len(stream) and tickets[applied] <= pinned:
            apply_op(replay, stream[applied])
            applied += 1
        want = _rows(oracle, source)
        if seen != want:
            stats.disagreements.append(
                f"ticket {pinned}: {source}\n"
                f"    snapshot saw {seen!r}\n"
                f"    serial replay {want!r}"
            )
        stats.observations += 1
    oracle.close()
    return stats


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.difftest.concurrent",
        description="concurrent snapshot-isolation fuzzer",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--ops", type=int, default=300,
        help="writer mutations per round (default 300)",
    )
    parser.add_argument(
        "--readers", type=int, default=3,
        help="concurrent snapshot readers (default 3)",
    )
    parser.add_argument(
        "--queries", type=int, default=10,
        help="queries each reader runs (default 10)",
    )
    parser.add_argument(
        "--rounds", type=int, default=1,
        help="independent rounds with derived seeds (default 1)",
    )
    args = parser.parse_args(argv)

    failed = False
    for round_index in range(args.rounds):
        stats = run_fuzz(
            seed=args.seed + round_index,
            ops=args.ops,
            readers=args.readers,
            queries_per_reader=args.queries,
        )
        print(f"round {round_index} (seed {args.seed + round_index}): "
              f"{stats.summary()}")
        if not stats.ok:
            for line in stats.disagreements:
                print(f"  {line}")
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
