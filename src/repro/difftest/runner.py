"""The fuzz loop: generate, cross-check, shrink, persist, summarize.

:func:`run_fuzz` drives :class:`~repro.difftest.grammar.QueryGenerator`
against the :class:`~repro.difftest.oracle.Oracle` over one or more
Figure 1 workload sizes.  For every generated query it

1. asserts the render→parse round-trip (a generator bug otherwise);
2. runs the full engine matrix and tallies ok/skip/error per engine;
3. records the typing discipline (:func:`repro.typing.analysis.analyze`)
   the query lands in, as a cheap coverage signal for the grammar;
4. on disagreement, shrinks the query to a local minimum that still
   disagrees and saves it as a corpus case (when a corpus dir is given).

Determinism: query ``index`` under ``seed`` is always the same query, so
any report line can be replayed with ``--seed S --queries N`` alone.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import XsqlError
from repro.typing.analysis import analyze
from repro.workloads.generator import WORKLOAD_PRESETS, generate_database
from repro.workloads.scale import SCALE_TIERS, ScaleSpec, generate_scaled
from repro.xsql import ast
from repro.xsql.parser import parse_query

from repro.difftest.corpus import AnyWorkload, CorpusCase, save_case
from repro.difftest.grammar import GeneratorConfig, QueryGenerator, SchemaModel
from repro.difftest.oracle import Oracle
from repro.difftest.shrink import shrink_query

__all__ = ["FuzzStats", "run_fuzz"]

#: Workload sizes where the naive §3.4 oracle is allowed to run.
NAIVE_SIZES = ("tiny",)

#: Prefix selecting a seeded scale population instead of a preset:
#: ``scale-1k`` .. ``scale-1m`` (:data:`repro.workloads.scale.SCALE_TIERS`).
SCALE_PREFIX = "scale-"


def _workload_for_size(size: str, seed: int) -> AnyWorkload:
    """Resolve a size name to a preset config or a scale spec."""
    if size.startswith(SCALE_PREFIX):
        tier = size[len(SCALE_PREFIX):]
        if tier not in SCALE_TIERS:
            raise XsqlError(
                f"unknown scale tier {size!r}; choose from "
                + ", ".join(f"scale-{t}" for t in SCALE_TIERS)
            )
        return ScaleSpec(n_objects=SCALE_TIERS[tier], seed=seed)
    if size not in WORKLOAD_PRESETS:
        raise XsqlError(
            f"unknown workload size {size!r}; "
            f"choose from {sorted(WORKLOAD_PRESETS)} or scale-<tier>"
        )
    return WORKLOAD_PRESETS[size]


@dataclass
class FuzzStats:
    """Aggregated outcome of one fuzz run."""

    seed: int = 0
    queries: int = 0
    roundtrip_failures: List[str] = field(default_factory=list)
    engine_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    reference_errors: int = 0
    typing_disciplines: Dict[str, int] = field(default_factory=dict)
    disagreements: List[Dict] = field(default_factory=list)
    corpus_paths: List[Path] = field(default_factory=list)
    #: Per-size pipeline metrics report from the oracle's session
    #: (``python -m repro.difftest --stats`` prints these).
    pipeline_reports: Dict[str, str] = field(default_factory=dict)
    elapsed: float = 0.0

    def record_outcome(self, engine: str, status: str) -> None:
        per_engine = self.engine_counts.setdefault(
            engine, {"ok": 0, "skip": 0, "error": 0}
        )
        per_engine[status] = per_engine.get(status, 0) + 1

    @property
    def ok(self) -> bool:
        return not self.disagreements and not self.roundtrip_failures

    def skip_rate(self, engine: str) -> float:
        counts = self.engine_counts.get(engine)
        if not counts:
            return 0.0
        total = sum(counts.values())
        return counts.get("skip", 0) / total if total else 0.0

    def summary(self) -> str:
        lines = [
            f"difftest: seed={self.seed} queries={self.queries} "
            f"elapsed={self.elapsed:.1f}s"
        ]
        for engine, counts in self.engine_counts.items():
            total = sum(counts.values())
            rate = 100.0 * counts.get("skip", 0) / total if total else 0.0
            lines.append(
                f"  engine {engine:10s} ok={counts.get('ok', 0):5d} "
                f"skip={counts.get('skip', 0):5d} ({rate:4.1f}%) "
                f"error={counts.get('error', 0):3d}"
            )
        if self.typing_disciplines:
            spread = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.typing_disciplines.items())
            )
            lines.append(f"  typing: {spread}")
        if self.reference_errors:
            lines.append(
                f"  reference errors (uncomparable): {self.reference_errors}"
            )
        if self.roundtrip_failures:
            lines.append(
                f"  PARSE ROUND-TRIP FAILURES: {len(self.roundtrip_failures)}"
            )
            for text in self.roundtrip_failures[:5]:
                lines.append(f"    {text}")
        lines.append(f"  disagreements: {len(self.disagreements)}")
        for item in self.disagreements:
            lines.append(
                f"    [{item['size']} #{item['index']}] {item['query']}"
            )
            for reason in item["reasons"]:
                lines.append(f"      {reason}")
            if item.get("minimized") != item["query"]:
                lines.append(f"      minimized: {item['minimized']}")
        return "\n".join(lines)


def run_fuzz(
    seed: int = 0,
    queries: int = 500,
    sizes: Sequence[str] = ("tiny", "small"),
    config: Optional[GeneratorConfig] = None,
    corpus_dir: Optional[Path] = None,
    fail_fast: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> FuzzStats:
    """Fuzz *queries* seeded queries against each workload in *sizes*.

    The query budget is split evenly across sizes (remainder to the
    first), so ``queries=500`` means 500 oracle runs in total.
    """
    if config is None:
        config = GeneratorConfig()
    stats = FuzzStats(seed=seed)
    started = time.monotonic()

    share, remainder = divmod(queries, max(1, len(sizes)))
    for position, size in enumerate(sizes):
        workload = _workload_for_size(size, seed)
        budget = share + (remainder if position == 0 else 0)
        if budget <= 0:
            continue
        if isinstance(workload, ScaleSpec):
            store = generate_scaled(workload)
            # The merged-mode engines (reference, naive, flogic, ...)
            # are O(extent^|FROM|): a two-variable query over a scale
            # population cross-products the whole extents before any
            # conjunct can filter.  Single-FROM queries keep every
            # engine linear in the population, so the 10-engine matrix
            # stays comparable at 10^3-10^4 objects.
            size_config = dataclasses.replace(config, max_from=1)
        else:
            store = generate_database(workload)
            size_config = config
        oracle = Oracle(store, naive_enabled=size in NAIVE_SIZES)
        generator = QueryGenerator(
            SchemaModel.from_store(store), size_config, seed
        )
        if progress:
            progress(
                f"[{size}] store ready: "
                f"{len(store.individual_universe())} individuals, "
                f"{budget} queries"
            )
        for index in range(budget):
            query = generator.generate(index)
            text = str(query)
            stats.queries += 1
            try:
                parsed = parse_query(text)
                if not isinstance(parsed, ast.Query):
                    raise XsqlError("reparsed to a non-Query statement")
                if str(parsed) != str(parse_query(str(parsed))):
                    raise XsqlError("render/parse did not reach a fixpoint")
            except XsqlError as exc:
                stats.roundtrip_failures.append(f"{text}  ({exc})")
                continue

            report = oracle.run(text)
            for name, outcome in report.outcomes.items():
                stats.record_outcome(name, outcome.status)
            if report.reference_failed:
                stats.reference_errors += 1
            _record_typing(stats, parsed, store)

            if report.disagreements:
                entry = _handle_disagreement(
                    stats, oracle, parsed, report.disagreements,
                    seed=seed, index=index, size=size,
                    workload=workload, corpus_dir=corpus_dir,
                )
                if progress:
                    progress(f"[{size} #{index}] DISAGREEMENT: {entry['query']}")
                if fail_fast:
                    stats.elapsed = time.monotonic() - started
                    return stats
            elif progress and (index + 1) % 100 == 0:
                progress(f"[{size}] {index + 1}/{budget} queries agree")
        stats.pipeline_reports[size] = oracle.session.metrics.summary()

    stats.elapsed = time.monotonic() - started
    return stats


def _record_typing(
    stats: FuzzStats, parsed: ast.Query, store
) -> None:
    try:
        discipline = analyze(parsed, store).discipline()
    except XsqlError:
        discipline = "analysis-error"
    stats.typing_disciplines[discipline] = (
        stats.typing_disciplines.get(discipline, 0) + 1
    )


def _handle_disagreement(
    stats: FuzzStats,
    oracle: Oracle,
    parsed: ast.Query,
    reasons: List[str],
    seed: int,
    index: int,
    size: str,
    workload: AnyWorkload,
    corpus_dir: Optional[Path],
) -> Dict:
    def still_disagrees(candidate: ast.Query) -> bool:
        return bool(oracle.run(candidate).disagreements)

    minimized = shrink_query(parsed, still_disagrees)
    final_reasons = oracle.run(minimized).disagreements or reasons
    entry = {
        "seed": seed,
        "index": index,
        "size": size,
        "query": str(parsed),
        "minimized": str(minimized),
        "reasons": final_reasons,
    }
    stats.disagreements.append(entry)
    if corpus_dir is not None:
        case = CorpusCase(
            description=final_reasons[0],
            query=str(minimized),
            workload=workload,
            found_by={
                "seed": seed,
                "index": index,
                "size": size,
                "original": str(parsed),
                "disagreements": final_reasons,
            },
        )
        entry["corpus_path"] = str(save_case(case, corpus_dir))
        stats.corpus_paths.append(Path(entry["corpus_path"]))
    return entry
