"""A small relational engine: the baseline XSQL is contrasted against.

The paper's motivating example (§1): engine types live in the *data* of a
relational database (an ``EngineType`` column to project) but in the
*schema* of an object-oriented one (subclasses of an engine class to
browse).  This package provides the relational side of that contrast — a
set-semantics relational algebra with selection, projection, renaming,
joins, and the SQL-style set operators — plus a mirror builder that lays a
Figure 1 object store out as flat relations.
"""

from repro.relational.relation import Relation
from repro.relational.algebra import (
    difference,
    intersection,
    natural_join,
    product,
    project,
    rename,
    select,
    theta_join,
    union,
)
from repro.relational.engine import RelationalDatabase, mirror_figure1

__all__ = [
    "Relation",
    "select",
    "project",
    "rename",
    "product",
    "natural_join",
    "theta_join",
    "union",
    "difference",
    "intersection",
    "RelationalDatabase",
    "mirror_figure1",
]
