"""A named-relation database plus the Figure 1 relational mirror.

:func:`mirror_figure1` lays an object store out the way a relational
designer would: the IS-A information that the OODB keeps in its *schema*
(engine types as subclasses of an engine class) becomes an ``engine_type``
*column* — exactly the §1 contrast.  The benchmark harness runs "what are
all the engine types?" both ways: a relational projection here, a
``subclassOf`` schema query in XSQL.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.datamodel.store import ObjectStore
from repro.errors import RelationalError
from repro.oid import Atom, Oid, Value
from repro.relational.relation import Relation

__all__ = ["RelationalDatabase", "mirror_figure1"]


class RelationalDatabase:
    """A mutable catalogue of named relations."""

    def __init__(self) -> None:
        self._tables: Dict[str, Relation] = {}

    def create(self, name: str, columns: Sequence[str]) -> None:
        if name in self._tables:
            raise RelationalError(f"table {name} already exists")
        self._tables[name] = Relation(columns)

    def insert(self, name: str, row: Sequence[object]) -> None:
        table = self.table(name)
        self._tables[name] = Relation(
            table.columns, set(table.rows) | {tuple(row)}
        )

    def insert_many(
        self, name: str, rows: Iterable[Sequence[object]]
    ) -> None:
        table = self.table(name)
        new_rows = set(table.rows)
        new_rows.update(tuple(r) for r in rows)
        self._tables[name] = Relation(table.columns, new_rows)

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name]
        except KeyError:
            raise RelationalError(f"no table named {name!r}")

    def tables(self) -> Dict[str, Relation]:
        return dict(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables


def _payload(value: Optional[Oid]) -> object:
    if value is None:
        return None
    if isinstance(value, Value):
        return value.value
    return str(value)


def _scalar(store: ObjectStore, owner: Oid, attr: str) -> object:
    return _payload(store.invoke_scalar(owner, attr))


def _most_specific_class(store: ObjectStore, obj: Oid) -> Optional[str]:
    classes = [
        c for c in store.direct_classes_of(obj) if c in store.hierarchy
    ]
    ordered = store.hierarchy.specificity_order(classes)
    for cls in ordered:
        if cls.name != "Object":
            return cls.name
    return None


def mirror_figure1(store: ObjectStore) -> RelationalDatabase:
    """Flatten a Figure 1 object store into relations.

    The engine's IS-A position becomes the ``engine_type`` column of
    ``vehicles`` — schema information turned into data, as a relational
    design would have it (§1).
    """
    db = RelationalDatabase()
    db.create(
        "vehicles",
        ["vid", "model", "color", "manufacturer", "engine_type", "hp"],
    )
    db.create(
        "people", ["pid", "name", "age", "city", "salary", "is_employee"]
    )
    db.create("companies", ["cid", "name", "president"])
    db.create("divisions", ["did", "cid", "name", "manager"])
    db.create("division_employees", ["did", "pid"])
    db.create("owned_vehicles", ["pid", "vid"])
    db.create("fam_members", ["pid", "member"])
    db.create("engine_catalog", ["engine_type"])

    vehicle_rows: List[Sequence[object]] = []
    for vehicle in sorted(store.extent("Vehicle"), key=str):
        engine_type = None
        hp = None
        drivetrain = store.invoke_scalar(vehicle, "Drivetrain")
        if drivetrain is not None:
            engine = store.invoke_scalar(drivetrain, "Engine")
            if engine is not None:
                engine_type = _most_specific_class(store, engine)
                hp = _scalar(store, engine, "HPpower")
        vehicle_rows.append(
            (
                str(vehicle),
                _scalar(store, vehicle, "Model"),
                _scalar(store, vehicle, "Color"),
                _payload(store.invoke_scalar(vehicle, "Manufacturer")),
                engine_type,
                hp,
            )
        )
    db.insert_many("vehicles", vehicle_rows)

    people_rows: List[Sequence[object]] = []
    owned: List[Sequence[object]] = []
    fam: List[Sequence[object]] = []
    for person in sorted(store.extent("Person"), key=str):
        residence = store.invoke_scalar(person, "Residence")
        city = _scalar(store, residence, "City") if residence else None
        is_employee = store.is_instance(person, "Employee")
        people_rows.append(
            (
                str(person),
                _scalar(store, person, "Name"),
                _scalar(store, person, "Age"),
                city,
                _scalar(store, person, "Salary") if is_employee else None,
                is_employee,
            )
        )
        for vehicle in store.invoke(person, "OwnedVehicles"):
            owned.append((str(person), str(vehicle)))
        for member in store.invoke(person, "FamMembers"):
            fam.append((str(person), str(member)))
    db.insert_many("people", people_rows)
    db.insert_many("owned_vehicles", owned)
    db.insert_many("fam_members", fam)

    company_rows: List[Sequence[object]] = []
    division_rows: List[Sequence[object]] = []
    division_emp_rows: List[Sequence[object]] = []
    for company in sorted(store.extent("Company"), key=str):
        company_rows.append(
            (
                str(company),
                _scalar(store, company, "Name"),
                _payload(store.invoke_scalar(company, "President")),
            )
        )
        for division in store.invoke(company, "Divisions"):
            division_rows.append(
                (
                    str(division),
                    str(company),
                    _scalar(store, division, "Name"),
                    _payload(store.invoke_scalar(division, "Manager")),
                )
            )
            for member in store.invoke(division, "Employees"):
                division_emp_rows.append((str(division), str(member)))
    db.insert_many("companies", company_rows)
    db.insert_many("divisions", division_rows)
    db.insert_many("division_employees", division_emp_rows)

    # The relational design records *all* engine types in a catalog table
    # (installed or not) — the paper's footnote 1 distinction between the
    # two readings of "what are all the engine types?".
    engine_classes = [
        cls.name
        for cls in store.hierarchy.subclasses(Atom("PistonEngine"))
    ]
    db.insert_many(
        "engine_catalog", [(name,) for name in sorted(engine_classes)]
    )
    return db
