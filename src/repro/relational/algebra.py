"""Relational algebra operators (set semantics, Codd-style).

The baseline against which XSQL's path expressions are compared: an
explicit join per hop of the composition hierarchy, where the path
expression is "one simple path expression ... several path expressions
and/or nested subqueries" in earlier/relational languages (§1).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence

from repro.errors import RelationalError
from repro.relational.relation import Relation

__all__ = [
    "select",
    "project",
    "rename",
    "product",
    "natural_join",
    "theta_join",
    "union",
    "difference",
    "intersection",
]


def select(
    relation: Relation, predicate: Callable[[Dict[str, object]], bool]
) -> Relation:
    """σ: rows satisfying *predicate* (given as a column-dict function)."""
    return relation.filter(predicate)


def project(relation: Relation, columns: Sequence[str]) -> Relation:
    """π: the named columns, duplicates eliminated."""
    indices = [relation.index_of(c) for c in columns]
    return Relation(
        columns, {tuple(row[i] for i in indices) for row in relation.rows}
    )


def rename(relation: Relation, mapping: Dict[str, str]) -> Relation:
    """ρ: rename columns (unmentioned columns keep their names)."""
    new_columns = [mapping.get(c, c) for c in relation.columns]
    return Relation(new_columns, relation.rows)


def product(left: Relation, right: Relation) -> Relation:
    """×: cartesian product; column sets must be disjoint."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise RelationalError(
            f"product requires disjoint columns; shared: {sorted(overlap)}"
        )
    columns = left.columns + right.columns
    rows = {l + r for l in left.rows for r in right.rows}
    return Relation(columns, rows)


def natural_join(left: Relation, right: Relation) -> Relation:
    """⋈: equality on all shared columns; shared columns kept once."""
    shared = [c for c in left.columns if c in right.columns]
    if not shared:
        return product(left, right)
    right_only = [c for c in right.columns if c not in shared]
    left_idx = {c: left.index_of(c) for c in left.columns}
    right_idx = {c: right.index_of(c) for c in right.columns}

    # Hash join on the shared columns.
    buckets: Dict[tuple, list] = {}
    for row in right.rows:
        key = tuple(row[right_idx[c]] for c in shared)
        buckets.setdefault(key, []).append(row)
    out_columns = list(left.columns) + right_only
    rows = set()
    for lrow in left.rows:
        key = tuple(lrow[left_idx[c]] for c in shared)
        for rrow in buckets.get(key, ()):
            rows.add(lrow + tuple(rrow[right_idx[c]] for c in right_only))
    return Relation(out_columns, rows)


def theta_join(
    left: Relation,
    right: Relation,
    predicate: Callable[[Dict[str, object], Dict[str, object]], bool],
) -> Relation:
    """⋈θ: explicit join on an arbitrary pair predicate."""
    overlap = set(left.columns) & set(right.columns)
    if overlap:
        raise RelationalError(
            f"theta_join requires disjoint columns; shared: "
            f"{sorted(overlap)} (rename first)"
        )
    columns = left.columns + right.columns
    rows = set()
    for lrow in left.rows:
        ldict = dict(zip(left.columns, lrow))
        for rrow in right.rows:
            if predicate(ldict, dict(zip(right.columns, rrow))):
                rows.add(lrow + rrow)
    return Relation(columns, rows)


def _check_union_compatible(left: Relation, right: Relation) -> None:
    if left.columns != right.columns:
        raise RelationalError(
            f"set operations need identical schemas: {left.columns} vs "
            f"{right.columns}"
        )


def union(left: Relation, right: Relation) -> Relation:
    """∪: all rows of both relations (schemas must match)."""
    _check_union_compatible(left, right)
    return Relation(left.columns, left.rows | right.rows)


def difference(left: Relation, right: Relation) -> Relation:
    """−: rows of *left* absent from *right* (schemas must match)."""
    _check_union_compatible(left, right)
    return Relation(left.columns, left.rows - right.rows)


def intersection(left: Relation, right: Relation) -> Relation:
    """∩: rows common to both relations (schemas must match)."""
    _check_union_compatible(left, right)
    return Relation(left.columns, left.rows & right.rows)
