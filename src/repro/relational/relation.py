"""Relations with set semantics and named columns."""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Tuple,
)

from repro.errors import RelationalError

__all__ = ["Relation", "Row"]

Row = Tuple[object, ...]


class Relation:
    """An immutable relation: a schema plus a set of tuples."""

    def __init__(
        self, columns: Sequence[str], rows: Iterable[Sequence[object]] = ()
    ) -> None:
        self.columns: Tuple[str, ...] = tuple(columns)
        if len(set(self.columns)) != len(self.columns):
            raise RelationalError(
                f"duplicate column names in {self.columns}"
            )
        materialized = set()
        for row in rows:
            tup = tuple(row)
            if len(tup) != len(self.columns):
                raise RelationalError(
                    f"row arity {len(tup)} does not match schema "
                    f"{self.columns}"
                )
            materialized.add(tup)
        self._rows: FrozenSet[Row] = frozenset(materialized)

    # ------------------------------------------------------------------

    @property
    def rows(self) -> FrozenSet[Row]:
        return self._rows

    def index_of(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError:
            raise RelationalError(
                f"no column {column!r} in {self.columns}"
            )

    def column_values(self, column: str) -> FrozenSet[object]:
        index = self.index_of(column)
        return frozenset(row[index] for row in self._rows)

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(zip(self.columns, row)) for row in self.sorted_rows()]

    def sorted_rows(self) -> List[Row]:
        return sorted(self._rows, key=lambda row: tuple(map(str, row)))

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.sorted_rows())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._rows == other._rows

    def __hash__(self) -> int:
        return hash((self.columns, self._rows))

    def __repr__(self) -> str:
        return f"Relation(columns={self.columns}, rows={len(self._rows)})"

    # ------------------------------------------------------------------

    def filter(self, predicate: Callable[[Dict[str, object]], bool]) -> "Relation":
        """Rows satisfying a predicate over column-name dicts."""
        kept = [
            row
            for row in self._rows
            if predicate(dict(zip(self.columns, row)))
        ]
        return Relation(self.columns, kept)
