"""The scale harness: throughput and latency percentiles vs population size.

``BENCH_pipeline.json`` tracks *ratios* (cache, index, join speedups) on
toy populations; this module is the ROADMAP's "production scale"
measurement surface — absolute numbers on seeded
:mod:`repro.workloads.scale` populations:

* **ingest throughput** — objects/sec for generating (bulk-loading) each
  population tier;
* **query latency** — p50/p95 per query per ``plan``/``join_mode``
  combination, from repeated prepared re-runs;
* **per-operator latency** — p50/p95 of each physical operator's own
  wall time, read off the EXPLAIN ANALYZE instrumentation of every run;
* **latency-vs-scale curves** — a :class:`repro.metrics.PercentileCurve`
  per query, keyed by tier, for the canonical ``cost``/``hash`` mode.

The suite mixes the paper's read-only query shapes (path walks, schema
queries, quantified and aggregate predicates — Q3/Q4/Q6/Q7/Q11 style)
with the S (selective point predicate) and J (join) workloads from
``benchmarks/bench_pipeline.py``, rewritten against generated data.
Queries that are quadratic under merged (tuple-at-a-time) execution
carry explicit applicability caps, so ``plan="cost"``+``join_mode="hash"``
— the only factored mode — is measured at sizes the merged modes cannot
reach; a skipped (query, mode, tier) combination is recorded in the
artifact rather than silently dropped.

Everything lands in ``benchmarks/BENCH_scale.json`` with the full
:class:`~repro.workloads.scale.ScaleSpec` embedded per tier, so a run is
self-describing; :func:`strip_timings` zeroes every timing field, and
two runs from the same seed are byte-for-byte identical after it.
:func:`compare_to_baseline` is the CI gate: >2x regressions of ingest
throughput or worst-case query p95 fail the build.

Following the meta-querying program (Van den Bussche et al., "Towards
practical meta-querying"), the artifact is structured data first and a
report second — :func:`render_report` is just a view of the JSON.
"""

from __future__ import annotations

import copy
import json
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.metrics import Observation, PercentileCurve
from repro.workloads.scale import SCALE_TIERS, ScaleSpec, generate_scaled
from repro.xsql.session import Session

__all__ = [
    "MODES",
    "QUERY_SUITE",
    "QuerySpec",
    "compare_to_baseline",
    "render_report",
    "run_scale_benchmark",
    "strip_timings",
    "validate_artifact",
]

#: Artifact schema version (bump on shape changes).
SCHEMA_VERSION = 1

_UNCAPPED = 10**9


@dataclass(frozen=True)
class QuerySpec:
    """One suite query plus its applicability caps.

    ``factored_max``/``merged_max`` bound the population size
    (``ScaleSpec.n_objects``) the query runs at under factored
    (``cost``+``hash``) respectively merged (every other mode)
    execution.  The caps keep known-quadratic shapes — a self-join under
    tuple-at-a-time execution is |extent|² env merges — from turning the
    benchmark into a cross-product stress test; the artifact records
    every skip.
    """

    name: str
    text: str
    factored_max: int = _UNCAPPED
    merged_max: int = _UNCAPPED

    def cap(self, factored: bool) -> int:
        return self.factored_max if factored else self.merged_max


#: The fixed suite: paper-query shapes + S (selective) + J (join)
#: workloads over generated populations.
QUERY_SUITE: List[QuerySpec] = [
    # S: selective point predicates (index-probe territory).
    QuerySpec("S1", "SELECT X FROM Person X WHERE X.Name['P123']"),
    # Two FROM variables: merged execution collapses the whole state
    # into |Person|² envs before the first conjunct can filter, so the
    # merged cap stops at the 1k tier (same for J1/J2 below).
    QuerySpec(
        "S2",
        "SELECT X, Y FROM Person X, Person Y "
        "WHERE X.Name['P7'] and X.Residence[R] and Y.Residence[R]",
        merged_max=1_000,
    ),
    # P: the paper's read-only shapes, Q3/Q4/Q7/Q11/Q6 style.
    QuerySpec(
        "P3", "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
    ),
    QuerySpec(
        "P4",
        "SELECT Z FROM Employee X "
        "WHERE X.OwnedVehicles.Drivetrain.Engine[Z]",
    ),
    QuerySpec(
        "P7", "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"
    ),
    QuerySpec(
        "P11",
        "SELECT X.Name, W.Salary FROM Company X "
        "WHERE X.Divisions.Employees[W]",
    ),
    QuerySpec("P6", "SELECT #X WHERE TurboEngine subclassOf #X"),
    # A: aggregate predicate.
    QuerySpec(
        "A1",
        "SELECT X FROM Employee X "
        "WHERE count(X.FamMembers) > 2 and X.Salary < 35000",
    ),
    # J: joins.  Merged execution pays the cross product, so the merged
    # cap stops at the 1k tier; the hash side of J2 is output-bound
    # (Age × HPpower matches grow multiplicatively), capped at 10k.
    QuerySpec(
        "J1",
        "SELECT X, Y FROM Employee X, Employee Y "
        "WHERE X.Salary =some Y.Salary",
        merged_max=1_000,
    ),
    QuerySpec(
        "J2",
        "SELECT X, Y FROM Person X, Automobile Y "
        "WHERE X.Age =some Y.Drivetrain.Engine.HPpower",
        factored_max=10_000,
        merged_max=1_000,
    ),
]

#: The mode grid: (plan, join_mode, batch_format, workers).  Only
#: ``cost``+``hash`` executes factored (set-at-a-time with hash/semi
#: joins); the rest run merged.  The ``columnar`` entry re-runs the
#: factored mode over columnar batches with two morsel-scan workers —
#: same rows, measured against its own p95 budget in the CI gate.
MODES: List[Tuple[str, str, str, int]] = [
    ("cost", "hash", "rows", 1),
    ("cost", "hash", "columnar", 2),
    ("cost", "nested", "rows", 1),
    ("typed", "hash", "rows", 1),
    ("greedy", "hash", "rows", 1),
]

_TIMING_KEYS = frozenset(
    {
        "seconds",
        "objects_per_sec",
        "queries_per_sec",
        "p50_ms",
        "p95_ms",
        "mean_ms",
        "worst_p95_ms",
    }
)


def _is_factored(plan: str, join_mode: str) -> bool:
    return plan == "cost" and join_mode == "hash"


def _walk_optree(tree: Dict[str, object]) -> List[Dict[str, object]]:
    """Depth-first node list of a ``tree_dict`` snapshot (root first)."""
    out = [tree]
    for child in tree.get("children", ()):  # type: ignore[union-attr]
        out.extend(_walk_optree(child))
    return out


def _measure_query(
    session: Session,
    spec: QuerySpec,
    plan: str,
    rounds: int,
    batch_format: str = "rows",
    workers: int = 1,
) -> Dict[str, object]:
    """Prepared re-runs of one query: latency + per-operator analyze."""
    compiled = session.prepare(
        spec.text, plan=plan, batch_format=batch_format, workers=workers
    )
    rows = len(compiled.run().rows())  # warm-up, off the clock
    latency = Observation()
    operator_times: List[Tuple[str, str, Observation]] = []
    for _ in range(rounds):
        started = time.perf_counter()
        compiled.run()
        latency.record(time.perf_counter() - started)
        nodes = _walk_optree(compiled.last_optree)
        if not operator_times:
            operator_times = [
                (node["operator"], node.get("label", ""), Observation())
                for node in nodes
            ]
        for (_op, _label, obs), node in zip(operator_times, nodes):
            obs.record(node["time_ms"] / 1000.0)
    return {
        "query": spec.name,
        "rows": rows,
        "runs": rounds,
        "p50_ms": round(latency.percentile(0.50) * 1000, 4),
        "p95_ms": round(latency.percentile(0.95) * 1000, 4),
        "mean_ms": round(latency.mean * 1000, 4),
        "queries_per_sec": round(
            latency.count / latency.total if latency.total else 0.0, 2
        ),
        "operators": [
            {
                "operator": op,
                "label": label,
                "p50_ms": round(obs.percentile(0.50) * 1000, 4),
                "p95_ms": round(obs.percentile(0.95) * 1000, 4),
            }
            for op, label, obs in operator_times
        ],
        "_seconds_total": latency.total,
    }


def run_scale_benchmark(
    tiers: Sequence[str] = ("1k", "10k", "100k"),
    rounds: int = 3,
    seed: int = 0,
    progress: Optional[Callable[[str], None]] = None,
    modes: Sequence[Tuple[str, str, str, int]] = tuple(MODES),
) -> Dict[str, object]:
    """Run the suite across *tiers* and return the artifact payload."""
    say = progress or (lambda _line: None)
    query_curves: Dict[str, PercentileCurve] = {}
    payload: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "suite": "scale",
        "seed": seed,
        "rounds": rounds,
        "tiers": [],
    }
    for tier in tiers:
        if tier not in SCALE_TIERS:
            raise ValueError(
                f"unknown tier {tier!r}; known: {sorted(SCALE_TIERS)}"
            )
        n_objects = SCALE_TIERS[tier]
        spec = ScaleSpec(n_objects=n_objects, seed=seed)
        say(f"[{tier}] generating {n_objects} objects ...")
        started = time.perf_counter()
        store = generate_scaled(spec)
        ingest_seconds = time.perf_counter() - started
        total = spec.counts().total
        say(
            f"[{tier}] ingest {total} objects in {ingest_seconds:.2f}s "
            f"({total / ingest_seconds:,.0f} obj/s)"
        )
        tier_entry: Dict[str, object] = {
            "tier": tier,
            "spec": spec.as_dict(),
            "ingest": {
                "objects": total,
                "seconds": round(ingest_seconds, 4),
                "objects_per_sec": round(total / ingest_seconds, 1),
            },
            "modes": [],
        }
        rows_seen: Dict[str, int] = {}
        for plan, join_mode, batch_format, workers in modes:
            factored = _is_factored(plan, join_mode)
            session = Session(store)
            session.join_mode = join_mode
            mode_entry: Dict[str, object] = {
                "plan": plan,
                "join_mode": join_mode,
                "batch_format": batch_format,
                "workers": workers,
                "queries": [],
                "skipped": [],
            }
            mode_seconds = 0.0
            mode_runs = 0
            for qspec in QUERY_SUITE:
                if n_objects > qspec.cap(factored):
                    mode_entry["skipped"].append(qspec.name)
                    continue
                record = _measure_query(
                    session, qspec, plan, rounds, batch_format, workers
                )
                mode_seconds += record.pop("_seconds_total")
                mode_runs += rounds
                mode_entry["queries"].append(record)
                # Cross-mode safety: all modes must agree on row counts.
                expected = rows_seen.setdefault(
                    qspec.name, record["rows"]
                )
                if record["rows"] != expected:
                    raise AssertionError(
                        f"{tier}/{plan}/{join_mode}: {qspec.name} "
                        f"returned {record['rows']} rows, other modes "
                        f"saw {expected}"
                    )
                # Curves track the canonical rows-format factored mode
                # only, so the columnar re-run never double-records.
                if factored and batch_format == "rows":
                    query_curves.setdefault(
                        qspec.name, PercentileCurve()
                    ).points.setdefault(tier, Observation())
                    curve = query_curves[qspec.name].points[tier]
                    curve.record(record["p50_ms"])
            mode_entry["queries_per_sec"] = round(
                mode_runs / mode_seconds if mode_seconds else 0.0, 2
            )
            p95s = [q["p95_ms"] for q in mode_entry["queries"]]
            mode_entry["worst_p95_ms"] = max(p95s) if p95s else 0.0
            tier_entry["modes"].append(mode_entry)
            say(
                f"[{tier}] plan={plan} join={join_mode} "
                f"format={batch_format} workers={workers}: "
                f"{len(mode_entry['queries'])} queries, "
                f"{mode_entry['queries_per_sec']} q/s, "
                f"worst p95 {mode_entry['worst_p95_ms']}ms"
            )
        payload["tiers"].append(tier_entry)
    payload["curves"] = {
        name: curve.as_dict() for name, curve in query_curves.items()
    }
    return payload


# ----------------------------------------------------------------------
# artifact shape, determinism, and the CI gate
# ----------------------------------------------------------------------


def validate_artifact(payload: Dict[str, object]) -> None:
    """Raise ``ValueError`` unless *payload* has the BENCH_scale shape."""

    def need(mapping, key, where, kind=None):
        if not isinstance(mapping, dict) or key not in mapping:
            raise ValueError(f"{where}: missing {key!r}")
        if kind is not None and not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key}: expected {kind}, got "
                f"{type(mapping[key]).__name__}"
            )
        return mapping[key]

    if need(payload, "schema_version", "artifact") != SCHEMA_VERSION:
        raise ValueError("artifact: unsupported schema_version")
    if need(payload, "suite", "artifact") != "scale":
        raise ValueError("artifact: suite must be 'scale'")
    need(payload, "seed", "artifact", int)
    need(payload, "rounds", "artifact", int)
    tiers = need(payload, "tiers", "artifact", list)
    if not tiers:
        raise ValueError("artifact.tiers: must be non-empty")
    for tier in tiers:
        where = f"tier[{tier.get('tier') if isinstance(tier, dict) else '?'}]"
        need(tier, "tier", where, str)
        spec = need(tier, "spec", where, dict)
        need(spec, "n_objects", f"{where}.spec", int)
        need(spec, "seed", f"{where}.spec", int)
        need(spec, "counts", f"{where}.spec", dict)
        ingest = need(tier, "ingest", where, dict)
        for key in ("objects", "seconds", "objects_per_sec"):
            need(ingest, key, f"{where}.ingest", (int, float))
        modes = need(tier, "modes", where, list)
        if not modes:
            raise ValueError(f"{where}.modes: must be non-empty")
        for mode in modes:
            mwhere = (
                f"{where}.{mode.get('plan')}/{mode.get('join_mode')}"
                f"/{mode.get('batch_format')}"
            )
            need(mode, "plan", mwhere, str)
            need(mode, "join_mode", mwhere, str)
            need(mode, "batch_format", mwhere, str)
            need(mode, "workers", mwhere, int)
            need(mode, "skipped", mwhere, list)
            need(mode, "worst_p95_ms", mwhere, (int, float))
            for query in need(mode, "queries", mwhere, list):
                qwhere = f"{mwhere}.{query.get('query')}"
                need(query, "query", qwhere, str)
                need(query, "rows", qwhere, int)
                need(query, "runs", qwhere, int)
                for key in ("p50_ms", "p95_ms", "mean_ms"):
                    need(query, key, qwhere, (int, float))
                for op in need(query, "operators", qwhere, list):
                    need(op, "operator", f"{qwhere}.operators", str)
                    need(op, "p50_ms", f"{qwhere}.operators", (int, float))
                    need(op, "p95_ms", f"{qwhere}.operators", (int, float))
    need(payload, "curves", "artifact", dict)


def strip_timings(payload: Dict[str, object]) -> Dict[str, object]:
    """A deep copy with every timing/throughput field zeroed.

    Two runs of the same ``(seed, tiers, rounds)`` are byte-for-byte
    identical after this — the reproducibility contract of the harness.
    """

    def scrub(node, all_numbers=False):
        if isinstance(node, dict):
            return {
                key: (
                    0
                    if isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and (all_numbers or key in _TIMING_KEYS)
                    # Curve points are Observation dumps: every number
                    # in them is a timing statistic.
                    else scrub(value, all_numbers or key == "curves")
                )
                for key, value in node.items()
            }
        if isinstance(node, list):
            return [scrub(item, all_numbers) for item in node]
        return node

    return scrub(copy.deepcopy(payload))


def compare_to_baseline(
    payload: Dict[str, object],
    baseline: Dict[str, object],
    factor: float = 2.0,
) -> List[str]:
    """Regressions of *payload* vs *baseline* beyond *factor*.

    The CI gate: ingest throughput may not fall below ``1/factor`` of
    the baseline, and each mode's worst-case query p95 may not exceed
    ``factor`` times the baseline, for every tier/mode present in both.
    Returns human-readable violation lines (empty means pass).
    """
    problems: List[str] = []
    base_tiers = {tier["tier"]: tier for tier in baseline.get("tiers", [])}
    for tier in payload.get("tiers", []):
        base = base_tiers.get(tier["tier"])
        if base is None:
            continue
        rate = tier["ingest"]["objects_per_sec"]
        base_rate = base["ingest"]["objects_per_sec"]
        if base_rate and rate < base_rate / factor:
            problems.append(
                f"{tier['tier']}: ingest {rate:,.0f} obj/s is >{factor}x "
                f"below baseline {base_rate:,.0f} obj/s"
            )
        base_modes = {
            (
                mode["plan"],
                mode["join_mode"],
                mode.get("batch_format", "rows"),
            ): mode
            for mode in base.get("modes", [])
        }
        for mode in tier.get("modes", []):
            bmode = base_modes.get(
                (
                    mode["plan"],
                    mode["join_mode"],
                    mode.get("batch_format", "rows"),
                )
            )
            if bmode is None:
                continue
            worst = mode["worst_p95_ms"]
            base_worst = bmode["worst_p95_ms"]
            if base_worst and worst > base_worst * factor:
                problems.append(
                    f"{tier['tier']} plan={mode['plan']} "
                    f"join={mode['join_mode']} "
                    f"format={mode.get('batch_format', 'rows')}: "
                    f"worst p95 {worst}ms is "
                    f">{factor}x above baseline {base_worst}ms"
                )
    return problems


def render_report(payload: Dict[str, object]) -> str:
    """A readable table view of the artifact."""
    lines = [
        "scale harness: ingest throughput and query latency percentiles",
        f"seed={payload['seed']} rounds={payload['rounds']}",
    ]
    for tier in payload["tiers"]:
        ingest = tier["ingest"]
        lines.append(
            f"\n[{tier['tier']}] {ingest['objects']} objects ingested in "
            f"{ingest['seconds']}s ({ingest['objects_per_sec']:,.0f} obj/s)"
        )
        for mode in tier["modes"]:
            lines.append(
                f"  plan={mode['plan']:6s} join={mode['join_mode']:6s} "
                f"format={mode.get('batch_format', 'rows'):8s} "
                f"workers={mode.get('workers', 1)} "
                f"{mode['queries_per_sec']:8.1f} q/s  "
                f"worst p95 {mode['worst_p95_ms']:10.3f}ms"
                + (
                    f"  (skipped: {', '.join(mode['skipped'])})"
                    if mode["skipped"]
                    else ""
                )
            )
            for query in mode["queries"]:
                lines.append(
                    f"    {query['query']:4s} rows={query['rows']:7d} "
                    f"p50={query['p50_ms']:10.3f}ms "
                    f"p95={query['p95_ms']:10.3f}ms"
                )
    return "\n".join(lines)


def load_artifact(path: str) -> Dict[str, object]:
    with open(path) as handle:
        payload = json.load(handle)
    validate_artifact(payload)
    return payload
