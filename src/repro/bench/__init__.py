"""The experiment harness: paper-claim vs measured, in one run.

``python -m repro.bench.report`` executes every experiment of the
per-experiment index in DESIGN.md and prints the rows that EXPERIMENTS.md
records — answers for the worked examples, timings and ratios for the
performance claims.
"""

from repro.bench.report import run_all_experiments

__all__ = ["run_all_experiments"]
