"""Regenerate the EXPERIMENTS.md measurements.

Each ``experiment_*`` function returns a list of report lines; the module
is runnable::

    python -m repro.bench.report

Timings here use single-shot ``perf_counter`` measurements (the pytest
benches do the statistically careful version); they exist so the recorded
paper-vs-measured table can be reproduced with one command.
"""

from __future__ import annotations

import time
from typing import Callable, List

from repro import Session
from repro.oid import Atom, Value
from repro.relational import mirror_figure1, project
from repro.schema.figure1 import build_figure1_schema
from repro.schema.nobel import build_nobel_schema, populate_nobel_database
from repro.schema.typing_examples import (
    extend_with_typing_classes,
    populate_oo_forum,
)
from repro.typing import Exemptions, TypedEvaluator, analyze
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.workloads.paper_db import populate_paper_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

__all__ = ["run_all_experiments"]


def _paper_session() -> Session:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session


def _timed(fn: Callable[[], object]) -> tuple:
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def experiment_paper_answers() -> List[str]:
    """Q1–Q17: the worked examples and their reproduced answers."""
    session = _paper_session()
    lines = ["## Worked examples (answers)"]
    checks = [
        ("Q1 (1) mary123.Residence.City", "SELECT mary123.Residence.City",
         ["newyork"]),
        ("Q2 president's family names",
         "SELECT uniSQL.President.FamMembers.Name", ["Lee", "Sue"]),
        ("Q6 (4) TurboEngine subclassOf #X",
         "SELECT #X WHERE TurboEngine subclassOf #X",
         ["FourStrokeEngine", "Object", "PistonEngine"]),
        ("Q7 family member over 20",
         "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
         ["john13", "kim"]),
        ("Q10 aggregate family query",
         "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 and "
         "X.Residence =all X.FamMembers.Residence and X.Salary < 35000",
         ["ben"]),
    ]
    for label, text, expected in checks:
        result = sorted(str(v) for v in session.query(text).single_column())
        cleaned = [value.strip("'") for value in result]
        status = "ok" if cleaned == expected or result == expected else "MISMATCH"
        lines.append(f"- {label}: {cleaned} [{status}]")
    return lines


def experiment_thm61() -> List[str]:
    """THM61: typed vs untyped evaluation across database sizes."""
    fragment = (
        "SELECT X FROM Vehicle X "
        "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
    )
    lines = [
        "## THM61 — Theorem 6.1 range-restricted evaluation",
        "| n_people | untyped (ms) | typed (ms) | speedup |",
        "|---------:|-------------:|-----------:|--------:|",
    ]
    for n_people in (50, 150, 400):
        store = generate_database(WorkloadConfig(n_people=n_people))
        query = parse_query(fragment)
        plain, untyped_s = _timed(lambda: Evaluator(store).run(query))
        typed_eval = TypedEvaluator(store)
        report = typed_eval.plan(query)
        typed, typed_s = _timed(lambda: typed_eval.run(query, report))
        assert typed.rows() == plain.rows()
        lines.append(
            f"| {n_people} | {untyped_s * 1000:.1f} | {typed_s * 1000:.1f} "
            f"| {untyped_s / max(typed_s, 1e-9):.1f}x |"
        )
    return lines


def experiment_typing_spectrum() -> List[str]:
    """T17/T19/NOBEL: the §6.2 analyses."""
    lines = ["## Typing spectrum"]
    session = _paper_session()
    extend_with_typing_classes(session.store)
    populate_oo_forum(session.store)
    report17 = analyze(
        "SELECT X FROM Vehicle X WHERE X.Manufacturer[M] "
        "and M.President.OwnedVehicles[X]",
        session.store,
    )
    plan17 = report17.strict_witness[1] if report17.strict_witness else None
    lines.append(
        f"- fragment (17): {report17.discipline()} via plan {plan17}"
    )
    report19 = analyze(
        "SELECT X FROM Numeral Year WHERE X.Manufacturer[M] and "
        "M.President.OwnedVehicles[X] and OO_Forum.(Member @ Year)[M]",
        session.store,
    )
    plan19 = report19.strict_witness[1] if report19.strict_witness else None
    lines.append(
        f"- fragment (19): {report19.discipline()} via plan {plan19}"
    )
    nobel = Session()
    build_nobel_schema(nobel.store)
    populate_nobel_database(nobel.store)
    nobel_query = "SELECT X WHERE X.WonNobelPrize"
    lines.append(
        f"- Nobel query: {analyze(nobel_query, nobel.store).discipline()}"
        f" / with 0-th arg exempt: "
        f"{analyze(nobel_query, nobel.store, Exemptions.for_method('WonNobelPrize', 0)).discipline()}"
    )
    return lines


def experiment_thm31() -> List[str]:
    """THM31: translation equivalence over the conjunctive corpus."""
    from repro.flogic import FlogicDatabase, evaluate, translate

    session = _paper_session()
    db = FlogicDatabase.from_store(session.store)
    corpus = [
        "SELECT mary123.Residence.City",
        "SELECT uniSQL.President.FamMembers.Name",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        "SELECT Z FROM Employee X, Automobile Y "
        "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    ]
    agree = 0
    for text in corpus:
        query = parse_query(text)
        if evaluate(db, translate(query)) == session.query(text).rows():
            agree += 1
    return [
        "## THM31 — Theorem 3.1 translation",
        f"- {agree}/{len(corpus)} corpus queries: F-logic answers ≡ native "
        f"answers",
    ]


def experiment_engt() -> List[str]:
    """ENGT: the §1 engine-types contrast."""
    store = generate_database(WorkloadConfig(n_people=80, seed=3))
    session = Session(store)
    mirror = mirror_figure1(store)
    _, rel_s = _timed(
        lambda: project(mirror.table("vehicles"), ["engine_type"])
    )
    _, schema_s = _timed(
        lambda: session.query("SELECT #X WHERE #X subclassOf PistonEngine")
    )
    # Bind Z by walking from vehicles, then classify: the `FROM #E Z`
    # formulation forces the nested-loops evaluator to enumerate every
    # class extent first — the clause-order sensitivity §6.2's execution
    # plans are about.
    _, installed_s = _timed(
        lambda: session.query(
            "SELECT #E FROM Vehicle X WHERE X.Drivetrain.Engine[Z] "
            "and Z instanceOf #E and #E subclassOf PistonEngine"
        )
    )
    return [
        "## ENGT — engine types: relational vs schema query",
        f"- relational projection: {rel_s * 1000:.2f} ms",
        f"- XSQL schema-only query: {schema_s * 1000:.2f} ms",
        f"- XSQL installed-types query: {installed_s * 1000:.2f} ms",
    ]


def experiment_pvsq() -> List[str]:
    """PVSQ: single-sweep path vs fragmented vs subquery."""
    store = generate_database(WorkloadConfig(n_people=60, seed=23))
    rows = []
    answers = {}
    for name, text in (
        ("single-sweep", "SELECT Z FROM Employee X "
         "WHERE X.OwnedVehicles.Drivetrain.Engine[Z]"),
        ("fragmented", "SELECT Z FROM Employee X WHERE X.OwnedVehicles[V] "
         "and V.Drivetrain[D] and D.Engine[Z]"),
        ("subquery", "SELECT Z FROM Employee X WHERE Z =some "
         "(SELECT E FROM VehicleDrivetrain D "
         "WHERE X.OwnedVehicles.Drivetrain[D].Engine[E])"),
    ):
        result, seconds = _timed(
            lambda text=text: Evaluator(store).run(parse_query(text))
        )
        answers[name] = result.rows()
        rows.append(f"- {name}: {seconds * 1000:.2f} ms")
    assert len(set(map(frozenset, answers.values()))) == 1
    return ["## PVSQ — one path expression vs fragmented forms"] + rows


def experiment_ablation() -> List[str]:
    """ABLATE: decomposing the Theorem 6.1 speedup into its two levers."""
    from repro.typing import TypedEvaluator

    fragment = (
        "SELECT X FROM Vehicle X "
        "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
    )
    store = generate_database(WorkloadConfig(n_people=60, seed=17))
    query = parse_query(fragment)
    lines = ["## ABLATE — Theorem 6.1 decomposition (n_people=60)"]
    for name, flags in (
        ("neither", dict(use_reorder=False, use_restrictions=False)),
        ("restrict-only", dict(use_reorder=False, use_restrictions=True)),
        ("reorder-only", dict(use_reorder=True, use_restrictions=False)),
        ("both", dict(use_reorder=True, use_restrictions=True)),
    ):
        evaluator = TypedEvaluator(store, **flags)
        plan = evaluator.plan(query)
        _result, seconds = _timed(lambda: evaluator.run(query, plan))
        lines.append(f"- {name}: {seconds * 1000:.2f} ms")
    return lines


def experiment_index() -> List[str]:
    """INDEX: reverse lookups via the [BERT89]-style inverted index."""
    lines = ["## INDEX — inverted attribute index vs scan"]
    for n_people in (100, 300):
        store = generate_database(WorkloadConfig(n_people=n_people, seed=3))
        address = sorted(store.extent("Address"), key=str)[0]
        query = parse_query(f"SELECT X WHERE X.Residence[{address}]")
        scan, scan_s = _timed(lambda: Evaluator(store).run(query))
        store.enable_index("Residence")
        indexed, indexed_s = _timed(lambda: Evaluator(store).run(query))
        assert indexed.rows() == scan.rows()
        lines.append(
            f"- n_people={n_people}: scan {scan_s * 1000:.2f} ms, indexed "
            f"{indexed_s * 1000:.2f} ms "
            f"({scan_s / max(indexed_s, 1e-9):.1f}x)"
        )
    return lines


def experiment_planner() -> List[str]:
    """PLANNER: greedy boundness order vs typed plan vs textual order."""
    from repro.typing import TypedEvaluator
    from repro.xsql.planner import GreedyPlanner

    fragment = (
        "SELECT X FROM Vehicle X "
        "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
    )
    store = generate_database(WorkloadConfig(n_people=80, seed=29))
    query = parse_query(fragment)
    lines = ["## PLANNER — who needs types? (n_people=80)"]
    baseline, base_s = _timed(lambda: Evaluator(store).run(query))
    lines.append(f"- textual order: {base_s * 1000:.2f} ms")
    greedy_query = GreedyPlanner().reorder(query)
    greedy, greedy_s = _timed(lambda: Evaluator(store).run(greedy_query))
    lines.append(f"- greedy planner: {greedy_s * 1000:.2f} ms")
    typed_eval = TypedEvaluator(store)
    plan = typed_eval.plan(query)
    typed, typed_s = _timed(lambda: typed_eval.run(query, plan))
    lines.append(f"- typed plan (Thm 6.1): {typed_s * 1000:.2f} ms")
    assert greedy.rows() == baseline.rows() == typed.rows()
    return lines


def run_all_experiments() -> str:
    sections = [
        experiment_paper_answers(),
        experiment_thm31(),
        experiment_typing_spectrum(),
        experiment_thm61(),
        experiment_ablation(),
        experiment_planner(),
        experiment_index(),
        experiment_engt(),
        experiment_pvsq(),
    ]
    return "\n".join(line for section in sections for line in section)


if __name__ == "__main__":
    print(run_all_experiments())
