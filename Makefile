# Convenience targets for the XSQL reproduction.

.PHONY: install test bench report examples all

install:
	# `pip install -e .` needs the `wheel` package for PEP 660 builds;
	# the setup.py path below works in fully offline environments too.
	pip install -e . 2>/dev/null || python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

report:
	python -m repro.bench.report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: install test bench report
