# Convenience targets for the XSQL reproduction.

.PHONY: install test test-all fuzz-smoke fuzz fuzz-concurrent storage-smoke bench bench-analyze bench-scale bench-storage report examples all

install:
	# `pip install -e .` needs the `wheel` package for PEP 660 builds;
	# the setup.py path below works in fully offline environments too.
	pip install -e . 2>/dev/null || python setup.py develop

# Tier-1: the fast suite (slow-marked tests skipped) plus a fixed-seed
# differential fuzz smoke pass (see docs/DIFFTEST.md) and the WAL
# crash-recovery smoke (see docs/STORAGE.md).
test: fuzz-smoke storage-smoke
	pytest tests/

# Everything: slow-marked tests (large workloads, naive-oracle
# equivalence) and a deeper fuzz run across workload sizes.
test-all:
	pytest tests/ --runslow
	PYTHONPATH=src python -m repro.difftest --seed 0 --queries 500 --quiet

# ~200 queries, fixed seed, smallest store: catches engine divergence
# in a few seconds without bloating the edit-test loop.  The second run
# hammers the hash-join executor with explicit-join shapes; the third
# cross-checks the engines over a generated scale-1k population, so
# bulk-loaded data (not just the hand-built paper DB) is covered.
# Finally the concurrent snapshot fuzzer interleaves a writer thread
# with pinned readers and replays every observation serially.
fuzz-smoke: fuzz-concurrent
	PYTHONPATH=src python -m repro.difftest --seed 0 --queries 200 --sizes tiny --quiet
	PYTHONPATH=src python -m repro.difftest --seed 0 --queries 120 --sizes tiny --preset joins --quiet
	PYTHONPATH=src python -m repro.difftest --seed 0 --queries 10 --sizes scale-1k --quiet

# Snapshot-isolation smoke: one writer thread vs 3 snapshot readers,
# every (pinned ticket, query, rows) observation checked bit-for-bit
# against single-threaded replay of the op prefix (docs/MVCC.md).
fuzz-concurrent:
	PYTHONPATH=src python -m repro.difftest.concurrent --seed 11 \
		--ops 300 --readers 3 --queries 10

# Open-ended fuzzing; override SEED/QUERIES/SIZES as needed, e.g.
#   make fuzz SEED=7 QUERIES=2000 SIZES=tiny,medium
SEED ?= 0
QUERIES ?= 1000
SIZES ?= tiny,small
fuzz:
	PYTHONPATH=src python -m repro.difftest --seed $(SEED) --queries $(QUERIES) \
		--sizes $(SIZES) --corpus-dir tests/corpus

# WAL crash-recovery smoke: commit a run of journal batches, truncate
# the log mid-record at several byte offsets, recover each copy, and
# assert every survivor equals the state after a committed prefix of
# batches — never a torn half-batch.  The recovery log is the CI
# artifact.
storage-smoke:
	PYTHONPATH=src python -m repro.storage.smoke --batches 24 \
		--out recovery-smoke.log

bench:
	pytest benchmarks/ --benchmark-only

# Write-path overhead per storage backend (dict vs memory mirror vs
# WAL) and log-engine open/replay/checkpoint costs.
bench-storage:
	pytest benchmarks/bench_storage.py --benchmark-only

# Cardinality-estimation accuracy: EXPLAIN ANALYZE over the planner
# workloads, per-operator est-vs-actual dumped into the seeded BENCH
# JSON artifact alongside the speedup criteria.
bench-analyze:
	PYTHONPATH=src python benchmarks/bench_pipeline.py --analyze \
		--json benchmarks/BENCH_pipeline.json

# The scale harness: ingest throughput + query latency percentiles over
# seeded 10^3/10^4/10^5 populations, all plan/join_mode combinations,
# written to the self-describing BENCH_scale.json artifact.  Add
# TIERS="1k 10k 100k 1m" (plus --runslow semantics via the CLI) for the
# million-object tier.
TIERS ?= 1k 10k 100k
bench-scale:
	PYTHONPATH=src python benchmarks/bench_scale.py --tiers $(TIERS) \
		--json benchmarks/BENCH_scale.json

report:
	python -m repro.bench.report

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f; done

all: install test bench report
