"""Setup shim.

The offline evaluation environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build; this shim lets
``python setup.py develop`` provide the editable install instead.  Metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
