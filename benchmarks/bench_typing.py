"""T17/T19/PLANS: the §6.2 typing analysis as an experiment.

Reproduces the two worked typing fragments — (17), strictly well-typed
exactly via the plan that evaluates the Manufacturer path first, and (19),
whose *only* coherent plan is third → second → first with
``President : Organization => Person`` — and measures the cost of the
assignment/plan search as the number of path expressions grows.
"""

import pytest

from repro.oid import Atom
from repro.typing import Exemptions, analyze, build_typed_query
from repro.typing.liberal import complete_assignments
from repro.typing.plans import all_plans
from repro.typing.strict import is_coherent
from repro.xsql.parser import parse_query

FRAGMENT_17 = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)
FRAGMENT_19 = (
    "SELECT X FROM Numeral Year "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X] "
    "and OO_Forum.(Member @ Year)[M]"
)

#: Chains of growing length for the plan-search sweep.
CHAINS = {
    2: "SELECT X FROM Company X WHERE X.Divisions[D] and D.Manager[M]",
    3: (
        "SELECT X FROM Company X WHERE X.Divisions[D] and D.Manager[M] "
        "and M.Residence[R]"
    ),
    4: (
        "SELECT X FROM Company X WHERE X.Divisions[D] and D.Manager[M] "
        "and M.Residence[R] and R.City[C]"
    ),
    5: (
        "SELECT X FROM Company X WHERE X.Divisions[D] and D.Manager[M] "
        "and M.Residence[R] and R.City[C] and M.Salary[W]"
    ),
}


@pytest.mark.benchmark(group="typing-fragments")
def test_fragment17_analysis(benchmark, paper):
    report = benchmark(lambda: analyze(FRAGMENT_17, paper.store))
    assert report.strict
    _assignment, plan = report.strict_witness
    assert plan.order == (0, 1)


@pytest.mark.benchmark(group="typing-fragments")
def test_fragment19_analysis(benchmark, typing_paper):
    report = benchmark(lambda: analyze(FRAGMENT_19, typing_paper.store))
    assert report.strict
    assignment, plan = report.strict_witness
    assert plan.order == (2, 1, 0)
    president = next(
        expr
        for occ, expr in assignment.entries
        if occ.method == Atom("President")
    )
    assert president.scope == Atom("Organization")


@pytest.mark.benchmark(group="typing-fragments")
def test_nobel_spectrum(benchmark, nobel):
    query = "SELECT X WHERE X.WonNobelPrize"

    def full_spectrum():
        default = analyze(query, nobel.store)
        exempted = analyze(
            query, nobel.store, Exemptions.for_method("WonNobelPrize", 0)
        )
        return default, exempted

    default, exempted = benchmark(full_spectrum)
    assert default.discipline() == "liberal-only"
    assert exempted.discipline() == "strict"


@pytest.mark.parametrize("length", sorted(CHAINS))
@pytest.mark.benchmark(group="typing-plan-search")
def test_plan_search_cost(benchmark, paper, length):
    """Assignment×plan search vs number of path expressions."""
    text = CHAINS[length]
    report = benchmark(lambda: analyze(text, paper.store))
    assert report.strict, text


def test_coherent_plan_counts(typing_paper):
    """Shape check: (19) has exactly one coherent plan, (17) at least one.

    "There are many execution plans, some of which have while others have
    no coherent type assignments."
    """
    store = typing_paper.store
    typed_query = build_typed_query(parse_query(FRAGMENT_19))
    coherent_plans = set()
    for assignment in complete_assignments(typed_query, store):
        from repro.typing.assignments import is_valid_assignment

        if not is_valid_assignment(assignment, typed_query, store):
            continue
        ranges = assignment.all_ranges(typed_query)
        if any(r.is_empty(store.hierarchy) for r in ranges.values()):
            continue
        for plan in all_plans(typed_query):
            if is_coherent(assignment, plan, typed_query, store):
                coherent_plans.add(plan.order)
    assert coherent_plans == {(2, 1, 0)}
