"""Benchmark harness package (one module per DESIGN.md experiment)."""
