"""THM31: the F-logic translation, validated and measured.

For a corpus of conjunctive paper queries, the bench (a) asserts that the
procedure ``P`` of Theorem 3.1 plus the F-logic kernel produce exactly the
native evaluator's answers, and (b) measures both engines.  Expected
shape: the native binding-stream engine beats the generic
unification-based kernel — the kernel is an executable specification, not
a competitor — while both agree on every answer.
"""

import pytest

from repro.flogic import FlogicDatabase, evaluate, translate
from repro.xsql.parser import parse_query

CORPUS = [
    (
        "q1-path",
        "SELECT mary123.Residence.City",
    ),
    (
        "q2-unnest",
        "SELECT uniSQL.President.FamMembers.Name",
    ),
    (
        "q3-selector",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    ),
    (
        "q4-join",
        "SELECT Z FROM Employee X, Automobile Y "
        "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    ),
    (
        "q5-schema",
        "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    ),
    (
        "q6-comparison",
        "SELECT X FROM Employee X WHERE X.Salary < 35000",
    ),
]


@pytest.mark.parametrize("name,text", CORPUS, ids=[c[0] for c in CORPUS])
@pytest.mark.benchmark(group="thm31-flogic")
def test_flogic_evaluation(benchmark, paper, name, text):
    query = parse_query(text)
    db = FlogicDatabase.from_store(paper.store)
    translated = translate(query)
    flogic_answers = benchmark(lambda: evaluate(db, translated))
    assert flogic_answers == paper.query(text).rows(), name


@pytest.mark.parametrize("name,text", CORPUS, ids=[c[0] for c in CORPUS])
@pytest.mark.benchmark(group="thm31-native")
def test_native_evaluation(benchmark, paper, name, text):
    result = benchmark(lambda: paper.query(text))
    assert len(result) >= 0


@pytest.mark.benchmark(group="thm31-translate")
def test_translation_cost(benchmark, paper):
    queries = [parse_query(text) for _name, text in CORPUS]

    def translate_all():
        return [translate(q) for q in queries]

    translated = benchmark(translate_all)
    assert len(translated) == len(CORPUS)


@pytest.mark.benchmark(group="thm31-translate")
def test_export_cost(benchmark, paper):
    db = benchmark(lambda: FlogicDatabase.from_store(paper.store))
    assert db.fact_count() > 100
