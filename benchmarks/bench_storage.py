"""STORAGE: write-path overhead per backend and WAL recovery speed.

The storage engine's contract is "pay only for what you attach": the
default dict backend must not slow the write path down at all, the
memory mirror costs one codec pass per mutation, and the WAL adds
framing plus an append.  The bench pins the ingest cost curve per
backend and the open-with-replay (crash recovery) and checkpoint-then-
open costs of the log engine.
"""

import pytest

from repro.oid import Atom
from repro.storage import (
    LogStructuredEngine,
    MemoryEngine,
    StoreJournal,
    decode_store,
)

N_PEOPLE = 300
REFERENCE_AGE = 40


def ingest(engine):
    """Build a people database, mirroring into *engine* if given."""
    from repro.datamodel.store import ObjectStore

    store = ObjectStore()
    if engine is not None:
        store.set_journal(StoreJournal(engine, store))
    store.declare_class("Person")
    store.declare_class("Employee", ["Person"])
    store.declare_signature("Person", "Name", "String")
    store.declare_signature("Person", "Age", "Numeral")
    store.declare_signature("Employee", "Salary", "Numeral")
    for i in range(N_PEOPLE):
        obj = store.create_object(
            Atom(f"p{i}"), ["Employee" if i % 3 == 0 else "Person"]
        )
        store.set_attr(obj, "Name", f"Person {i}")
        store.set_attr(obj, "Age", 20 + (i * 7) % 60)
        if i % 3 == 0:
            store.set_attr(obj, "Salary", 1000 * i)
    return store


def count_over_40(store):
    return sum(
        1
        for obj in store.extent("Person")
        if (cell := store.explicit_cell(obj, "Age")) is not None
        and cell.value.value > REFERENCE_AGE
    )


@pytest.mark.benchmark(group="storage-ingest")
def test_ingest_dict_backend(benchmark):
    store = benchmark(lambda: ingest(None))
    assert count_over_40(store) > 0


@pytest.mark.benchmark(group="storage-ingest")
def test_ingest_memory_mirror(benchmark):
    def run():
        engine = MemoryEngine()
        return ingest(engine), engine

    store, engine = benchmark(run)
    assert len(engine) > N_PEOPLE


@pytest.mark.benchmark(group="storage-ingest")
def test_ingest_wal_engine(benchmark, tmp_path):
    counter = [0]

    def run():
        counter[0] += 1
        engine = LogStructuredEngine(
            str(tmp_path / f"db{counter[0]}"), sync="never"
        )
        store = ingest(engine)
        engine.close()
        return store

    store = benchmark(run)
    assert count_over_40(store) > 0


@pytest.mark.benchmark(group="storage-recovery")
def test_open_with_wal_replay(benchmark, tmp_path):
    path = str(tmp_path / "db")
    engine = LogStructuredEngine(path, sync="never")
    reference = ingest(engine)
    engine.close()

    def recover():
        recovered_engine = LogStructuredEngine(path, sync="never")
        store = decode_store(recovered_engine)
        recovered_engine.close()
        return store

    recovered = benchmark(recover)
    assert count_over_40(recovered) == count_over_40(reference)


@pytest.mark.benchmark(group="storage-recovery")
def test_open_from_checkpoint(benchmark, tmp_path):
    path = str(tmp_path / "db")
    engine = LogStructuredEngine(path, sync="never")
    reference = ingest(engine)
    engine.checkpoint()
    engine.close()

    def recover():
        recovered_engine = LogStructuredEngine(path, sync="never")
        store = decode_store(recovered_engine)
        recovered_engine.close()
        return store

    recovered = benchmark(recover)
    assert count_over_40(recovered) == count_over_40(reference)
