"""FIG1: building and validating the Figure 1 schema.

The paper's only figure is its schema; this bench regenerates it
programmatically, asserts its IS-A/aggregation structure, and measures how
long construction takes (the baseline cost every other experiment pays).
"""

import pytest

from repro.datamodel import ObjectStore
from repro.oid import Atom
from repro.schema.figure1 import FIGURE1_CLASSES, build_figure1_schema
from repro.workloads.paper_db import populate_paper_database


def _build() -> ObjectStore:
    return build_figure1_schema(ObjectStore())


@pytest.mark.benchmark(group="figure1")
def test_fig1_schema_construction(benchmark):
    store = benchmark(_build)
    for name in FIGURE1_CLASSES:
        assert Atom(name) in store.class_universe()
    assert store.hierarchy.superclasses(Atom("TurboEngine")) == frozenset(
        {Atom("FourStrokeEngine"), Atom("PistonEngine"), Atom("Object")}
    )


@pytest.mark.benchmark(group="figure1")
def test_fig1_instance_population(benchmark):
    def build_and_populate():
        return populate_paper_database(build_figure1_schema(ObjectStore()))

    store = benchmark(build_and_populate)
    assert len(store.extent("Person")) == 19
    assert len(store.extent("Vehicle")) == 4


@pytest.mark.benchmark(group="figure1")
def test_fig1_schema_closure_queries(benchmark, paper):
    hierarchy = paper.store.hierarchy

    def closure():
        total = 0
        for cls in hierarchy.classes():
            total += len(hierarchy.superclasses(cls))
            total += len(hierarchy.subclasses(cls))
        return total

    total = benchmark(closure)
    assert total > 0
