"""Pipeline benchmarks: the statement cache, and the cost-based planner.

**Cache benchmark** — cold vs. cached execution of the paper's queries
(1)–(13): *cold* runs clear the cache first and pay ``parse → normalize
→ analyze → plan → execute`` in full; *cached* runs re-execute a
prepared :class:`~repro.xsql.pipeline.CompiledQuery`, paying only the
execute stage (plus, under ``plan="typed"``, the data-dependent Theorem
6.1 extent-restriction rebuild).  The headline number is the best
per-query speedup: for compile-heavy queries (a short path expression
like Q1, or a join whose coherent-pair search dominates like Q12) cached
re-execution must be at least 3× faster than cold.  Execution-bound
queries (Q9's quantified double loop) sit near 1× by construction — the
cache does not speed up evaluation, only compilation — so the per-query
table is the trajectory to watch.

**Selective-predicate benchmark** — ``plan="cost"`` (auto-enabled index
probes) vs. ``plan="greedy"`` (extent scans) on a 400-person synthetic
workload whose ``Name`` values are unique: a point predicate like
``X.Name['P123']`` must run at least 5× faster once the cost planner
restricts the FROM enumeration to the index probe's owners.

**Columnar benchmark** — ``batch_format="columnar"`` with ``workers=2``
vs the row representation on prepared ``plan="greedy"`` re-runs of the
evaluation-bound paper queries (Q4, Q5, Q9, Q10): the columnar side
evaluates conjuncts column-at-a-time over the session-persistent
walker memo, and every query must clear a 5× speedup.

**Pointer-join benchmark** — ``pointer_join="force"`` vs
``pointer_join="off"`` on prepared ``plan="cost"`` re-runs: V1 binds a
fan-out conjunct (``D.Manager =some Y``) by dereferencing the stored
cell instead of scanning the 600-employee extent and hashing it; V2
is a star with two navigation edges hanging off one selective
dimension.  Both must clear 5×.

**View-maintenance benchmark** — V3: after ``k`` point salary writes,
re-reading a materialized view through its id-term (which triggers the
lazy *targeted* sync — only the affected groups re-derive) must be 5×
faster than a full ``refresh`` recompute of the same view.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_pipeline.py [--rounds N]
        [--plan none|greedy|typed|cost] [--json PATH]

or through pytest (asserts the ≥3× cache and ≥5× selective criteria)::

    PYTHONPATH=src python -m pytest benchmarks/bench_pipeline.py
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Callable, Dict, List, Tuple

from repro import Session
from repro.schema.figure1 import build_figure1_schema
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.workloads.paper_db import populate_paper_database

#: The paper's numbered examples Q1–Q12 (read-only; Q13 is measured
#: separately because object creation mutates the store).
PAPER_QUERIES: List[Tuple[str, str]] = [
    ("Q1", "SELECT mary123.Residence.City"),
    ("Q2", "SELECT uniSQL.President.FamMembers.Name"),
    ("Q3", "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"),
    (
        "Q4",
        "SELECT Z FROM Employee X, Automobile Y "
        "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    ),
    ("Q5", "SELECT Y FROM Person X WHERE X.Y.City['newyork']"),
    ("Q6", "SELECT #X WHERE TurboEngine subclassOf #X"),
    ("Q7", "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20"),
    (
        "Q8",
        "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
        "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
        "and X.President.Age < 30",
    ),
    (
        "Q9",
        "SELECT Y, X FROM Employee Y, Employee X "
        "WHERE count(Y.FamMembers) > 0 and count(X.FamMembers) > 0 "
        "and Y.FamMembers.Age all<all X.FamMembers.Age",
    ),
    (
        "Q10",
        "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
        "and X.Residence =all X.FamMembers.Residence "
        "and X.Salary < 35000",
    ),
    (
        "Q11",
        "SELECT X.Name, W.Salary FROM Company X "
        "WHERE X.Divisions.Employees[W]",
    ),
    (
        "Q12",
        "SELECT X, Y FROM Company X "
        "WHERE X.Name =some X.Divisions.Employees[Y].Name",
    ),
]

Q13_CREATION = (
    "SELECT EmpSalary = W.Salary FROM Company X "
    "OID FUNCTION OF X, W WHERE X.Divisions.Employees[W]"
)

SPEEDUP_TARGET = 3.0

#: The cost-planner benchmark: selective predicates over a workload big
#: enough that an index probe dwarfs the extent scan.  ``Name`` values
#: are unique per person in the generator, so the point predicates below
#: select exactly one binding out of 400.
SELECTIVE_WORKLOAD = WorkloadConfig(n_people=400, seed=42)
SELECTIVE_QUERIES: List[Tuple[str, str]] = [
    ("S1", "SELECT X FROM Person X WHERE X.Name['P123']"),
    (
        "S2",
        "SELECT X, Y FROM Person X, Person Y "
        "WHERE X.Name['P7'] and X.Residence[R] and Y.Residence[R]",
    ),
    (
        "S3",
        "SELECT X, S FROM Employee X "
        "WHERE X.Name['P11'] and X.Salary[S]",
    ),
]
SELECTIVE_TARGET = 5.0

#: The join-executor benchmark: ``join_mode="hash"`` (set-at-a-time hash
#: joins) vs ``join_mode="nested"`` (tuple-at-a-time) under identical
#: ``plan="cost"`` join orders.  J1 is a self-join, J2 a fan-out chain
#: join, J3 a star with two equality edges; all three pay the cross
#: product under nested-loop execution.
JOIN_WORKLOAD = WorkloadConfig(n_people=160, n_companies=6, seed=7)
JOIN_QUERIES: List[Tuple[str, str]] = [
    (
        "J1",
        "SELECT X, Y FROM Employee X, Employee Y "
        "WHERE X.Salary =some Y.Salary",
    ),
    (
        "J2",
        "SELECT X, Y FROM Person X, Automobile Y "
        "WHERE X.Age =some Y.Drivetrain.Engine.HPpower",
    ),
    (
        "J3",
        "SELECT D, X, Y FROM Division D, Employee X, Employee Y "
        "WHERE D.Manager.Salary =some X.Salary "
        "and D.Location.City =some Y.Residence.City",
    ),
]
JOIN_TARGET = 5.0

#: The columnar-execution benchmark: ``batch_format="columnar"`` with
#: ``workers=2`` vs the row representation, both re-running a prepared
#: ``plan="greedy"`` compilation on the paper database.  The rows side
#: pays full conjunct evaluation on every run (a fresh evaluator per
#: execution); the columnar side runs on the session-persistent walker
#: whose generation-stamped memo serves warm re-runs, with conjunct
#: evaluation and batch assembly column-at-a-time.  The four queries
#: are the paper's evaluation-bound ones: the Q4 chain join, Q5's
#: method-variable enumeration, Q9's quantified double loop, and Q10's
#: aggregate + quantifier conjunction.
COLUMNAR_QUERIES = ("Q4", "Q5", "Q9", "Q10")
COLUMNAR_PLAN = "greedy"
COLUMNAR_WORKERS = 2
COLUMNAR_TARGET = 5.0

#: The pointer-join benchmark: ``pointer_join="force"`` vs ``"off"``
#: under identical ``plan="cost"`` join orders, with ``Name`` indexed
#: so the kept side is a probe and the *skipped* extent dominates.  V1
#: navigates one stored-oid edge instead of scanning and hashing the
#: employee extent; V2 is a star with two fused navigation edges.
POINTER_WORKLOAD = WorkloadConfig(n_people=1000, n_companies=8, seed=11)
POINTER_QUERIES: List[Tuple[str, str]] = [
    (
        "V1",
        "SELECT D, Y FROM Division D, Employee Y "
        "WHERE D.Name['Div2_1'] and D.Manager =some Y",
    ),
    (
        "V2",
        "SELECT D, M, A FROM Division D, Employee M, Address A "
        "WHERE D.Name['Div3_0'] and D.Manager =some M "
        "and D.Location =some A",
    ),
]
POINTER_TARGET = 5.0

#: The view-maintenance benchmark (V3): k point salary writes, then a
#: re-read of one view object through its id-term — the lazy targeted
#: sync re-derives only the written groups — against the same writes
#: followed by a full view recompute (refresh).
VIEW_WORKLOAD = WorkloadConfig(n_people=400, n_companies=6, seed=13)
VIEW_STATEMENT = (
    "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
    "SIGNATURE CompName = String, Salary = Numeral "
    "SELECT CompName = X.Name, Salary = W.Salary "
    "FROM Company X OID FUNCTION OF X, W "
    "WHERE X.Divisions[Y].Employees[W]"
)
VIEW_WRITES = 3
VIEW_TARGET = 5.0

#: The MVCC snapshot-read benchmark: the paper's read-only pool Q1–Q12
#: re-run through a pinned :class:`SnapshotSession` (a copy-on-write
#: StoreView over the same store) against the same prepared re-runs on
#: the base session.  Q13 is excluded: it creates objects and snapshots
#: are read-only.  The criterion gates the *aggregate* ratio — total
#: snapshot time over total direct time — because the individual paper
#: queries run in microseconds and per-query ratios are timing noise.
SNAPSHOT_OVERHEAD_LIMIT = 1.10


def _paper_session() -> Session:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session


def _median_seconds(action: Callable[[], object], rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        action()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def measure(
    plan: str = "typed", rounds: int = 9
) -> List[Tuple[str, float, float]]:
    """Per-query (name, cold_seconds, cached_seconds) medians."""
    session = _paper_session()
    results = []
    for name, text in PAPER_QUERIES:
        def cold() -> None:
            session.pipeline.clear()
            session.query(text, plan=plan)

        cold_s = _median_seconds(cold, rounds)
        compiled = session.prepare(text, plan=plan)
        compiled.run()  # warm the compilation before timing re-runs
        cached_s = _median_seconds(compiled.run, rounds)
        results.append((name, cold_s, cached_s))
    # Q13 creates objects on every run (a fresh functor per execution),
    # so it rides on its own session and is reported but not part of the
    # speedup criterion: its cost is creation, not compilation.
    creation_session = _paper_session()

    def q13_cold() -> None:
        creation_session.pipeline.clear()
        creation_session.query(Q13_CREATION)

    q13_cold_s = _median_seconds(q13_cold, rounds)
    q13_compiled = creation_session.prepare(Q13_CREATION)
    q13_cached_s = _median_seconds(q13_compiled.run, rounds)
    results.append(("Q13*", q13_cold_s, q13_cached_s))
    return results


def measure_selective(
    rounds: int = 9,
) -> List[Tuple[str, float, float, int]]:
    """Per-query (name, scan_seconds, cost_seconds, rows) medians.

    Both sides time a *prepared* re-run, so compilation is off the
    clock and the difference is purely the access path: greedy extent
    scans (indexes forbidden) vs. the cost plan's index probes.
    """
    scan_session = Session(generate_database(SELECTIVE_WORKLOAD))
    scan_session.index_mode = "off"
    cost_session = Session(generate_database(SELECTIVE_WORKLOAD))
    results = []
    for name, text in SELECTIVE_QUERIES:
        scan = scan_session.prepare(text, plan="greedy")
        cost = cost_session.prepare(text, plan="cost")
        scan_rows = scan.run().rows()
        cost_rows = cost.run().rows()
        assert scan_rows == cost_rows, f"{name}: plans disagree"
        scan_s = _median_seconds(scan.run, rounds)
        cost_s = _median_seconds(cost.run, rounds)
        results.append((name, scan_s, cost_s, len(cost_rows)))
    return results


def measure_joins(
    rounds: int = 5,
) -> List[Tuple[str, float, float, int]]:
    """Per-query (name, nested_seconds, hash_seconds, rows) medians.

    Both sides re-run a *prepared* ``plan="cost"`` compilation, so the
    join order is identical and the difference is purely the executor:
    tuple-at-a-time nested loops vs factored hash joins.
    """
    nested_session = Session(generate_database(JOIN_WORKLOAD))
    nested_session.join_mode = "nested"
    hash_session = Session(generate_database(JOIN_WORKLOAD))
    results = []
    for name, text in JOIN_QUERIES:
        nested = nested_session.prepare(text, plan="cost")
        hashed = hash_session.prepare(text, plan="cost")
        nested_rows = nested.run().rows()
        hash_rows = hashed.run().rows()
        assert nested_rows == hash_rows, f"{name}: executors disagree"
        nested_s = _median_seconds(nested.run, rounds)
        hash_s = _median_seconds(hashed.run, rounds)
        results.append((name, nested_s, hash_s, len(hash_rows)))
    return results


def measure_columnar(
    rounds: int = 9,
) -> List[Tuple[str, float, float, int]]:
    """Per-query (name, rows_seconds, columnar_seconds, rows) medians.

    Both sides re-run a *prepared* ``plan=greedy`` compilation on the
    paper database, so compilation is off the clock and the difference
    is purely the batch representation: per-binding dict evaluation vs
    columnar batches over the session-persistent walker memo.  Results
    are asserted bit-identical (ordered) before timing.
    """
    rows_session = _paper_session()
    col_session = _paper_session()
    queries = dict(PAPER_QUERIES)
    results = []
    for name in COLUMNAR_QUERIES:
        text = queries[name]
        as_rows = rows_session.prepare(text, plan=COLUMNAR_PLAN)
        as_cols = col_session.prepare(
            text,
            plan=COLUMNAR_PLAN,
            batch_format="columnar",
            workers=COLUMNAR_WORKERS,
        )
        row_result = as_rows.run()
        col_result = as_cols.run()
        assert list(row_result) == list(col_result), (
            f"{name}: representations disagree"
        )
        rows_s = _median_seconds(as_rows.run, rounds)
        cols_s = _median_seconds(as_cols.run, rounds)
        results.append((name, rows_s, cols_s, len(col_result.rows())))
    return results


def measure_pointer(
    rounds: int = 7,
) -> List[Tuple[str, float, float, int]]:
    """Per-query (name, hash_seconds, pointer_seconds, rows) medians.

    Both sides re-run a *prepared* ``plan="cost"`` compilation with the
    ``Name`` index enabled, so the difference is purely the join
    machinery on the fused conjuncts: extent scan + hash build/probe
    (``pointer_join="off"``) vs stored-cell dereference
    (``pointer_join="force"``).
    """
    hash_session = Session(generate_database(POINTER_WORKLOAD))
    hash_session.enable_index("Name")
    pointer_session = Session(generate_database(POINTER_WORKLOAD))
    pointer_session.enable_index("Name")
    results = []
    for name, text in POINTER_QUERIES:
        hashed = hash_session.prepare(text, plan="cost", pointer_join="off")
        fused = pointer_session.prepare(
            text, plan="cost", pointer_join="force"
        )
        hash_rows = hashed.run().rows()
        fused_rows = fused.run().rows()
        assert hash_rows == fused_rows, f"{name}: join machineries disagree"
        hash_s = _median_seconds(hashed.run, rounds)
        fused_s = _median_seconds(fused.run, rounds)
        results.append((name, hash_s, fused_s, len(fused_rows)))
    return results


def measure_view_maintenance(
    rounds: int = 5, writes: int = VIEW_WRITES
) -> Tuple[float, float, int]:
    """(targeted_seconds, recompute_seconds, groups) for V3.

    One session, one materialized view.  Each targeted round makes
    ``writes`` point salary updates and re-reads one view object
    through its id-term — the pipeline's lazy sync re-derives only the
    affected groups first.  Each recompute round makes the same writes
    and refreshes the whole view before the identical read.
    """
    from repro.oid import Value

    session = Session(generate_database(VIEW_WORKLOAD))
    session.query(VIEW_STATEMENT)
    view = session.views.get("CompSalaries")
    owners = [
        derivation.target
        for (oid, attr), derivation in sorted(
            view.outcome.derivations.items(), key=lambda kv: str(kv[0][0])
        )
        if attr == "Salary"
    ][:writes]
    assert owners, "no salary derivations to write through"
    target = sorted(view.outcome.created, key=str)[0]
    read = f"SELECT {target}.Salary"
    groups = len(view.outcome.created)
    bump = [0]

    def write_points() -> None:
        bump[0] += 1
        for owner in owners:
            session.store.set_attr(
                owner, "Salary", Value(260_000 + bump[0])
            )

    def targeted():
        write_points()
        return session.query(read)

    def recompute():
        write_points()
        session.views.refresh("CompSalaries", session.evaluator())
        return session.query(read)

    # Both paths must serve the freshly written value before timing.
    assert targeted().rows() == frozenset({(Value(260_001),)})
    assert recompute().rows() == frozenset({(Value(260_002),)})
    targeted_s = _median_seconds(targeted, rounds)
    recompute_s = _median_seconds(recompute, rounds)
    return targeted_s, recompute_s, groups


def measure_snapshot(
    rounds: int = 9,
) -> List[Tuple[str, float, float]]:
    """Per-query (name, direct_seconds, snapshot_seconds) medians.

    Both sides time *prepared* re-runs (compilation off the clock): the
    direct side on the base session, the snapshot side on one pinned
    SnapshotSession whose StoreView overlays pre-image chains on every
    read.  Row sets are asserted equal before timing.
    """
    session = _paper_session()
    results = []
    with session.snapshot_view() as snap:
        for name, text in PAPER_QUERIES:
            direct = session.prepare(text)
            through = snap.prepare(text)
            assert direct.run().rows() == through.run().rows(), name
            direct_s = _median_seconds(direct.run, rounds)
            snapshot_s = _median_seconds(through.run, rounds)
            results.append((name, direct_s, snapshot_s))
    return results


def snapshot_overhead(results: List[Tuple[str, float, float]]) -> float:
    """Aggregate snapshot/direct time ratio over the read-only pool."""
    direct = sum(d for _name, d, _s in results)
    snapshot = sum(s for _name, _d, s in results)
    return snapshot / direct if direct else 1.0


def report_snapshot(results: List[Tuple[str, float, float]]) -> str:
    lines = [
        "MVCC snapshot reads (prepared re-runs, pinned StoreView "
        "vs direct):",
        f"{'query':>6}  {'direct':>10}  {'snapshot':>10}  {'ratio':>7}",
    ]
    for name, direct, snapshot in results:
        ratio = snapshot / direct if direct else float("nan")
        lines.append(
            f"{name:>6}  {direct * 1000:>8.3f}ms  "
            f"{snapshot * 1000:>8.3f}ms  {ratio:>6.2f}x"
        )
    lines.append(
        f"aggregate overhead: {snapshot_overhead(results):.3f}x "
        f"(limit {SNAPSHOT_OVERHEAD_LIMIT:.2f}x)"
    )
    return "\n".join(lines)


def measure_estimation() -> List[Dict[str, object]]:
    """Per-operator cardinality-estimation error under ``plan="cost"``.

    Runs the selective (S1–S3) and join (J1–J3) workloads once each
    through EXPLAIN ANALYZE and walks the instrumented operator tree:
    every operator that carries a planner estimate contributes one
    record with its estimated and actual row counts and the relative
    error ``|est - act| / max(1, act)``.
    """
    records: List[Dict[str, object]] = []
    workloads = [
        (SELECTIVE_WORKLOAD, SELECTIVE_QUERIES),
        (JOIN_WORKLOAD, JOIN_QUERIES),
    ]
    for config, queries in workloads:
        session = Session(generate_database(config))
        for name, text in queries:
            compiled = session.prepare(text, plan="cost")
            json.loads(compiled.explain(format="json", analyze=True))
            stack = [compiled.last_optree]
            while stack:
                node = stack.pop()
                stack.extend(node.get("children", ()))
                estimate = node.get("estimated_rows")
                if estimate is None:
                    continue
                actual = node["rows_out"]
                records.append(
                    {
                        "query": name,
                        "operator": node["operator"],
                        "label": node["label"],
                        "estimated_rows": estimate,
                        "actual_rows": actual,
                        "relative_error": round(
                            abs(estimate - actual) / max(1, actual), 3
                        ),
                    }
                )
    return records


def report_estimation(records: List[Dict[str, object]]) -> str:
    lines = [
        "cardinality estimation: per-operator est vs actual "
        "(EXPLAIN ANALYZE, plan=cost)",
        f"{'query':6s} {'operator':14s} {'est':>8s} {'act':>8s} "
        f"{'rel.err':>8s}  label",
    ]
    for record in records:
        lines.append(
            f"{record['query']:6s} {record['operator']:14s} "
            f"{record['estimated_rows']:8g} {record['actual_rows']:8d} "
            f"{record['relative_error']:8.3f}  {record['label']}"
        )
    errors = [record["relative_error"] for record in records]
    lines.append(
        f"operators: {len(records)}  "
        f"mean rel.err: {statistics.mean(errors):.3f}  "
        f"max rel.err: {max(errors):.3f}"
    )
    return "\n".join(lines)


def estimation_as_json(
    records: List[Dict[str, object]]
) -> Dict[str, object]:
    errors = [record["relative_error"] for record in records]
    return {
        "operators": records,
        "mean_relative_error": round(statistics.mean(errors), 3),
        "max_relative_error": round(max(errors), 3),
    }


def best_speedup(results: List[Tuple[str, float, float]]) -> float:
    return max(
        cold / cached
        for name, cold, cached in results
        if cached > 0 and not name.endswith("*")
    )


def best_selective_speedup(
    results: List[Tuple[str, float, float, int]]
) -> float:
    return max(
        scan / cost for _name, scan, cost, _rows in results if cost > 0
    )


def worst_join_speedup(
    results: List[Tuple[str, float, float, int]]
) -> float:
    """The *minimum* speedup: every J workload must clear the target."""
    return min(
        nested / hashed
        for _name, nested, hashed, _rows in results
        if hashed > 0
    )


def worst_pointer_speedup(
    results: List[Tuple[str, float, float, int]]
) -> float:
    """The *minimum* speedup: every V workload must clear the target."""
    return min(
        hashed / fused
        for _name, hashed, fused, _rows in results
        if fused > 0
    )


def view_maintenance_speedup(
    maintenance: Tuple[float, float, int]
) -> float:
    targeted_s, recompute_s, _groups = maintenance
    return recompute_s / targeted_s if targeted_s else float("inf")


def report_pointer(
    results: List[Tuple[str, float, float, int]]
) -> str:
    lines = [
        "pointer joins: hash execution vs stored-oid navigation "
        f"(plan=cost, {POINTER_WORKLOAD.n_people} people)",
        f"{'query':6s} {'hash':>10s} {'pointer':>10s} {'speedup':>8s} "
        f"{'rows':>5s}",
    ]
    for name, hashed, fused, rows in results:
        ratio = hashed / fused if fused else float("inf")
        lines.append(
            f"{name:6s} {hashed * 1000:8.3f}ms {fused * 1000:8.3f}ms "
            f"{ratio:7.2f}x {rows:5d}"
        )
    lines.append(
        f"worst speedup: {worst_pointer_speedup(results):.2f}x "
        f"(target >= {POINTER_TARGET:.0f}x on every workload)"
    )
    return "\n".join(lines)


def report_view_maintenance(
    maintenance: Tuple[float, float, int]
) -> str:
    targeted_s, recompute_s, groups = maintenance
    return (
        f"view maintenance (V3): re-read after {VIEW_WRITES} point "
        f"writes, {groups}-group view "
        f"({VIEW_WORKLOAD.n_people} people)\n"
        f"targeted sync {targeted_s * 1000:.3f}ms vs full recompute "
        f"{recompute_s * 1000:.3f}ms: "
        f"{view_maintenance_speedup(maintenance):.2f}x "
        f"(target >= {VIEW_TARGET:.0f}x)"
    )


def worst_columnar_speedup(
    results: List[Tuple[str, float, float, int]]
) -> float:
    """The *minimum* speedup: every columnar query must clear 5x."""
    return min(
        rows / cols for _name, rows, cols, _n in results if cols > 0
    )


def report_columnar(
    results: List[Tuple[str, float, float, int]]
) -> str:
    lines = [
        "columnar executor: rows vs columnar batches "
        f"(plan={COLUMNAR_PLAN}, workers={COLUMNAR_WORKERS}, "
        "prepared re-runs, paper database)",
        f"{'query':6s} {'rows':>10s} {'columnar':>10s} {'speedup':>8s} "
        f"{'out':>5s}",
    ]
    for name, rows, cols, n in results:
        ratio = rows / cols if cols else float("inf")
        lines.append(
            f"{name:6s} {rows * 1000:8.3f}ms {cols * 1000:8.3f}ms "
            f"{ratio:7.2f}x {n:5d}"
        )
    lines.append(
        f"worst speedup: {worst_columnar_speedup(results):.2f}x "
        f"(target >= {COLUMNAR_TARGET:.0f}x on every query)"
    )
    return "\n".join(lines)


def report(results: List[Tuple[str, float, float]]) -> str:
    lines = [
        "pipeline cache: cold (compile+run) vs cached (prepared re-run)",
        f"{'query':6s} {'cold':>10s} {'cached':>10s} {'speedup':>8s}",
    ]
    for name, cold, cached in results:
        ratio = cold / cached if cached else float("inf")
        lines.append(
            f"{name:6s} {cold * 1000:8.3f}ms {cached * 1000:8.3f}ms "
            f"{ratio:7.2f}x"
        )
    lines.append(
        f"best speedup: {best_speedup(results):.2f}x "
        f"(target >= {SPEEDUP_TARGET:.0f}x; * = creation query, excluded)"
    )
    return "\n".join(lines)


def report_selective(
    results: List[Tuple[str, float, float, int]]
) -> str:
    lines = [
        "cost planner: greedy extent scan vs cost-plan index probe "
        f"({SELECTIVE_WORKLOAD.n_people} people)",
        f"{'query':6s} {'scan':>10s} {'cost':>10s} {'speedup':>8s} "
        f"{'rows':>5s}",
    ]
    for name, scan, cost, rows in results:
        ratio = scan / cost if cost else float("inf")
        lines.append(
            f"{name:6s} {scan * 1000:8.3f}ms {cost * 1000:8.3f}ms "
            f"{ratio:7.2f}x {rows:5d}"
        )
    lines.append(
        f"best speedup: {best_selective_speedup(results):.2f}x "
        f"(target >= {SELECTIVE_TARGET:.0f}x)"
    )
    return "\n".join(lines)


def report_joins(
    results: List[Tuple[str, float, float, int]]
) -> str:
    lines = [
        "join executor: nested-loop vs hash-join under plan=cost "
        f"({JOIN_WORKLOAD.n_people} people)",
        f"{'query':6s} {'nested':>10s} {'hash':>10s} {'speedup':>8s} "
        f"{'rows':>5s}",
    ]
    for name, nested, hashed, rows in results:
        ratio = nested / hashed if hashed else float("inf")
        lines.append(
            f"{name:6s} {nested * 1000:8.3f}ms {hashed * 1000:8.3f}ms "
            f"{ratio:7.2f}x {rows:5d}"
        )
    lines.append(
        f"worst speedup: {worst_join_speedup(results):.2f}x "
        f"(target >= {JOIN_TARGET:.0f}x on every workload)"
    )
    return "\n".join(lines)


def as_json(
    cache_results: List[Tuple[str, float, float]],
    selective_results: List[Tuple[str, float, float, int]],
    join_results: List[Tuple[str, float, float, int]],
    columnar_results: List[Tuple[str, float, float, int]],
    pointer_results: List[Tuple[str, float, float, int]],
    maintenance: Tuple[float, float, int],
    snapshot_results: List[Tuple[str, float, float]],
) -> Dict[str, object]:
    """The JSON artifact CI uploads (``BENCH_pipeline.json``)."""
    targeted_s, recompute_s, groups = maintenance
    return {
        "targets": {
            "cache_speedup": SPEEDUP_TARGET,
            "selective_speedup": SELECTIVE_TARGET,
            "join_speedup": JOIN_TARGET,
            "columnar_speedup": COLUMNAR_TARGET,
            "pointer_speedup": POINTER_TARGET,
            "view_maintenance_speedup": VIEW_TARGET,
            "snapshot_overhead_limit": SNAPSHOT_OVERHEAD_LIMIT,
        },
        "cache": [
            {
                "query": name,
                "cold_ms": round(cold * 1000, 4),
                "cached_ms": round(cached * 1000, 4),
                "speedup": round(cold / cached, 2) if cached else None,
            }
            for name, cold, cached in cache_results
        ],
        "best_cache_speedup": round(best_speedup(cache_results), 2),
        "selective": [
            {
                "query": name,
                "scan_ms": round(scan * 1000, 4),
                "cost_ms": round(cost * 1000, 4),
                "speedup": round(scan / cost, 2) if cost else None,
                "rows": rows,
            }
            for name, scan, cost, rows in selective_results
        ],
        "best_selective_speedup": round(
            best_selective_speedup(selective_results), 2
        ),
        "joins": [
            {
                "query": name,
                "nested_ms": round(nested * 1000, 4),
                "hash_ms": round(hashed * 1000, 4),
                "speedup": round(nested / hashed, 2) if hashed else None,
                "rows": rows,
            }
            for name, nested, hashed, rows in join_results
        ],
        "worst_join_speedup": round(worst_join_speedup(join_results), 2),
        "columnar": [
            {
                "query": name,
                "rows_ms": round(rows * 1000, 4),
                "columnar_ms": round(cols * 1000, 4),
                "speedup": round(rows / cols, 2) if cols else None,
                "rows": n,
            }
            for name, rows, cols, n in columnar_results
        ],
        "worst_columnar_speedup": round(
            worst_columnar_speedup(columnar_results), 2
        ),
        "pointer": [
            {
                "query": name,
                "hash_ms": round(hashed * 1000, 4),
                "pointer_ms": round(fused * 1000, 4),
                "speedup": round(hashed / fused, 2) if fused else None,
                "rows": rows,
            }
            for name, hashed, fused, rows in pointer_results
        ],
        "worst_pointer_speedup": round(
            worst_pointer_speedup(pointer_results), 2
        ),
        "view_maintenance": {
            "writes": VIEW_WRITES,
            "groups": groups,
            "targeted_ms": round(targeted_s * 1000, 4),
            "recompute_ms": round(recompute_s * 1000, 4),
            "speedup": round(view_maintenance_speedup(maintenance), 2),
        },
        "snapshot": [
            {
                "query": name,
                "direct_ms": round(direct * 1000, 4),
                "snapshot_ms": round(snapshot * 1000, 4),
                "ratio": round(snapshot / direct, 3) if direct else None,
            }
            for name, direct, snapshot in snapshot_results
        ],
        "snapshot_overhead": round(snapshot_overhead(snapshot_results), 3),
    }


def test_cached_reexecution_at_least_3x_on_some_paper_query():
    results = measure(rounds=9)
    assert best_speedup(results) >= SPEEDUP_TARGET, report(results)


def test_cost_plan_beats_scans_5x_on_selective_predicates():
    results = measure_selective(rounds=9)
    assert best_selective_speedup(results) >= SELECTIVE_TARGET, (
        report_selective(results)
    )


def test_hash_joins_beat_nested_loops_5x_on_every_join_workload():
    results = measure_joins(rounds=5)
    assert worst_join_speedup(results) >= JOIN_TARGET, (
        report_joins(results)
    )


def test_columnar_beats_rows_5x_on_every_columnar_query():
    results = measure_columnar(rounds=9)
    assert worst_columnar_speedup(results) >= COLUMNAR_TARGET, (
        report_columnar(results)
    )


def test_pointer_joins_beat_hash_5x_on_every_pointer_workload():
    results = measure_pointer(rounds=7)
    assert worst_pointer_speedup(results) >= POINTER_TARGET, (
        report_pointer(results)
    )


def test_targeted_view_maintenance_beats_recompute_5x():
    maintenance = measure_view_maintenance(rounds=5)
    assert view_maintenance_speedup(maintenance) >= VIEW_TARGET, (
        report_view_maintenance(maintenance)
    )


def test_snapshot_reads_within_10pct_of_direct():
    results = measure_snapshot(rounds=9)
    assert snapshot_overhead(results) <= SNAPSHOT_OVERHEAD_LIMIT, (
        report_snapshot(results)
    )


def test_cached_results_match_cold_results():
    session = _paper_session()
    for _name, text in PAPER_QUERIES:
        compiled = session.prepare(text, plan="typed")
        cached_rows = compiled.run().rows()
        session.pipeline.clear()
        assert cached_rows == session.query(text).rows(), text


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=9)
    parser.add_argument(
        "--plan",
        default="typed",
        choices=("none", "greedy", "typed", "cost"),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON artifact",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="also report per-operator cardinality-estimation error "
        "(EXPLAIN ANALYZE over the S and J workloads)",
    )
    args = parser.parse_args()
    results = measure(plan=args.plan, rounds=args.rounds)
    selective = measure_selective(rounds=args.rounds)
    joins = measure_joins(rounds=min(args.rounds, 5))
    columnar = measure_columnar(rounds=args.rounds)
    pointer = measure_pointer(rounds=min(args.rounds, 7))
    maintenance = measure_view_maintenance(rounds=min(args.rounds, 5))
    snapshot = measure_snapshot(rounds=args.rounds)
    estimation = measure_estimation() if args.analyze else None
    print(report(results))
    print()
    print(report_selective(selective))
    print()
    print(report_joins(joins))
    print()
    print(report_columnar(columnar))
    print()
    print(report_pointer(pointer))
    print()
    print(report_view_maintenance(maintenance))
    print()
    print(report_snapshot(snapshot))
    if estimation is not None:
        print()
        print(report_estimation(estimation))
    if args.json:
        payload = as_json(
            results, selective, joins, columnar, pointer, maintenance,
            snapshot,
        )
        if estimation is not None:
            payload["analyze"] = estimation_as_json(estimation)
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    ok = (
        best_speedup(results) >= SPEEDUP_TARGET
        and best_selective_speedup(selective) >= SELECTIVE_TARGET
        and worst_join_speedup(joins) >= JOIN_TARGET
        and worst_columnar_speedup(columnar) >= COLUMNAR_TARGET
        and worst_pointer_speedup(pointer) >= POINTER_TARGET
        and view_maintenance_speedup(maintenance) >= VIEW_TARGET
        and snapshot_overhead(snapshot) <= SNAPSHOT_OVERHEAD_LIMIT
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
