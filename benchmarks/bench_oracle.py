"""ORACLE: the literal §3.4 semantics vs the binding-stream engine.

The paper defines query meaning by enumerating *every* sort-respecting
substitution (§3.4) and immediately remarks that "quite often queries are
evaluated by nested loops" — the practical engine.  This bench quantifies
the gap on the same query as the database grows: the naive oracle's cost
is the product of the variable universes; the binding-stream engine walks
paths and only enumerates what nothing binds.

Expected shape: identical answers; naive cost explodes multiplicatively
with each variable, the stream engine stays near-linear.
"""

import pytest

from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator, NaiveEvaluator
from repro.xsql.parser import parse_query

QUERY = "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']"
SIZES = [10, 20]


def _store(n_people):
    return generate_database(WorkloadConfig(n_people=n_people, seed=13))


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="oracle-naive")
def test_naive_oracle(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(QUERY)
    evaluator = NaiveEvaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == Evaluator(store).run(query).rows()


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="oracle-stream")
def test_binding_stream(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(QUERY)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert len(result) >= 0


def test_gap_shape():
    import time

    gaps = []
    for n_people in SIZES:
        store = _store(n_people)
        query = parse_query(QUERY)
        start = time.perf_counter()
        naive = NaiveEvaluator(store).run(query)
        naive_s = time.perf_counter() - start
        start = time.perf_counter()
        stream = Evaluator(store).run(query)
        stream_s = time.perf_counter() - start
        assert naive.rows() == stream.rows()
        gaps.append(naive_s / max(stream_s, 1e-9))
    assert all(g > 1 for g in gaps)
    assert gaps[-1] > gaps[0]
