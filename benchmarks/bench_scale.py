"""Scale benchmark: ingest throughput and latency percentiles by tier.

A thin harness over :mod:`repro.bench.scale` — the fixed query suite
(paper shapes + the S/J workloads) over seeded
:mod:`repro.workloads.scale` populations, across
``plan``/``join_mode``/``batch_format``/``workers`` modes (including
the columnar re-run of the factored mode with two morsel-scan workers),
emitting ``benchmarks/BENCH_scale.json`` with the full generation spec
embedded.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scale.py
        [--tiers 1k 10k 100k] [--rounds N] [--seed N]
        [--modes cost:hash cost:hash:columnar:2 ...]
        [--json PATH] [--baseline PATH]

``--baseline`` compares against a previous artifact and exits non-zero
on a >2x regression of ingest throughput or worst-case query p95 — the
CI gate.  Through pytest the 1k tier runs by default and the 10^5/10^6
tiers are ``slow``-marked behind ``--runslow``::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py [--runslow]
"""

from __future__ import annotations

import json

import pytest

from repro.bench.scale import (
    MODES,
    compare_to_baseline,
    render_report,
    run_scale_benchmark,
    strip_timings,
    validate_artifact,
)


def test_scale_artifact_1k_valid_and_reproducible():
    payload = run_scale_benchmark(
        tiers=("1k",),
        rounds=1,
        modes=[("cost", "hash", "rows", 1), ("cost", "hash", "columnar", 2)],
    )
    validate_artifact(payload)
    again = run_scale_benchmark(
        tiers=("1k",),
        rounds=1,
        modes=[("cost", "hash", "rows", 1), ("cost", "hash", "columnar", 2)],
    )
    assert json.dumps(strip_timings(payload), sort_keys=True) == json.dumps(
        strip_timings(again), sort_keys=True
    )


def test_scale_1k_10k_all_modes():
    """The CI tier: every plan/join_mode combination at 1k and 10k."""
    payload = run_scale_benchmark(tiers=("1k", "10k"), rounds=2)
    validate_artifact(payload)
    for tier in payload["tiers"]:
        for mode in tier["modes"]:
            assert mode["queries"], (tier["tier"], mode["plan"])


@pytest.mark.slow
def test_scale_100k_tier():
    payload = run_scale_benchmark(tiers=("100k",), rounds=2)
    validate_artifact(payload)


@pytest.mark.slow
def test_scale_1m_tier():
    payload = run_scale_benchmark(
        tiers=("1m",), rounds=1, modes=[("cost", "hash", "rows", 1)]
    )
    validate_artifact(payload)


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tiers", nargs="+", default=["1k", "10k", "100k"]
    )
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--modes",
        nargs="+",
        metavar="PLAN:JOIN[:FORMAT[:WORKERS]]",
        default=None,
        help="modes, e.g. cost:hash cost:hash:columnar:2 (format "
        "defaults to rows, workers to 1; default: all of "
        f"{[':'.join(map(str, mode)) for mode in MODES]})",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the artifact (benchmarks/BENCH_scale.json in CI)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="compare against a previous artifact; exit 1 on a >2x "
        "regression of ingest throughput or worst-case p95",
    )
    args = parser.parse_args()
    def parse_mode(text: str):
        fields = text.split(":")
        if not 2 <= len(fields) <= 4:
            raise SystemExit(
                f"bad --modes entry {text!r}; want PLAN:JOIN[:FORMAT[:WORKERS]]"
            )
        plan, join_mode = fields[0], fields[1]
        batch_format = fields[2] if len(fields) > 2 else "rows"
        workers = int(fields[3]) if len(fields) > 3 else 1
        return (plan, join_mode, batch_format, workers)

    modes = (
        [parse_mode(pair) for pair in args.modes]
        if args.modes
        else tuple(MODES)
    )
    payload = run_scale_benchmark(
        tiers=tuple(args.tiers),
        rounds=args.rounds,
        seed=args.seed,
        progress=print,
        modes=modes,
    )
    validate_artifact(payload)
    print()
    print(render_report(payload))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    if args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        problems = compare_to_baseline(payload, baseline)
        if problems:
            print("\nREGRESSIONS vs baseline:")
            for line in problems:
                print(f"  {line}")
            return 1
        print(f"\nno >2x regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
