"""THM61: the Theorem 6.1 optimization, measured.

"In the evaluation of Q ... it suffices to consider only those
instantiations o of X such that o ∈ A(X)" — the paper calls this
"potentially very powerful".  The bench runs fragment (17) with its
conjuncts in the unfavourable textual order (the naive nested-loops
evaluation must try every individual as a candidate manufacturer) and
compares the untyped evaluator against the typed one across database
sizes.  The expected *shape*: the typed evaluator wins by a factor that
grows with the database, because the untyped cost scales with the whole
individual universe while the typed cost scales with extent(Company).
"""

import pytest

from repro.typing import TypedEvaluator, analyze
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

FRAGMENT = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)

SIZES = [30, 60, 120]


def _store(n_people):
    return generate_database(WorkloadConfig(n_people=n_people, seed=11))


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="thm61-untyped")
def test_untyped_evaluation(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(FRAGMENT)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result is not None


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="thm61-typed")
def test_typed_evaluation(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(FRAGMENT)
    evaluator = TypedEvaluator(store)
    report = evaluator.plan(query)  # amortized across repeated runs
    assert report.strict
    typed_result = benchmark(lambda: evaluator.run(query, report))
    # soundness: same answers as the untyped evaluator.
    assert typed_result.rows() == Evaluator(store).run(query).rows()


@pytest.mark.benchmark(group="thm61-analysis")
def test_type_analysis_cost(benchmark, paper):
    """The one-off cost of finding the coherent (A, P) pair."""
    report = benchmark(lambda: analyze(FRAGMENT, paper.store))
    assert report.strict


def test_speedup_shape():
    """The headline claim: the typed/untyped ratio grows with DB size."""
    import time

    ratios = []
    for n_people in SIZES:
        store = _store(n_people)
        query = parse_query(FRAGMENT)
        start = time.perf_counter()
        plain = Evaluator(store).run(query)
        untyped_s = time.perf_counter() - start
        typed_eval = TypedEvaluator(store)
        report = typed_eval.plan(query)
        start = time.perf_counter()
        typed = typed_eval.run(query, report)
        typed_s = time.perf_counter() - start
        assert typed.rows() == plain.rows()
        ratios.append(untyped_s / max(typed_s, 1e-9))
    # who wins: typed, at every size; by what factor: growing.
    assert all(r > 1 for r in ratios), ratios
    assert ratios[-1] > ratios[0], ratios
