"""PLANNER: greedy boundness ordering vs the typed Theorem 6.1 plan.

How much of the typed optimizer's win needs types?  Four engines on
fragment (17) in the unfavourable textual order:

* textual — the naive left-to-right nested loops;
* greedy — boundness reordering, no schema knowledge;
* typed — the Theorem 6.1 coherent plan + range restriction;
* greedy+index — boundness ordering plus a [BERT89] inverted index on
  Manufacturer.

Expected shape: greedy recovers the bulk of the win (the reorder), typed
adds range restriction on top, and all four agree on every answer.
"""

import pytest

from repro.typing import TypedEvaluator
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query
from repro.xsql.planner import GreedyPlanner

FRAGMENT = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)
N_PEOPLE = 80


@pytest.fixture(scope="module")
def store():
    return generate_database(WorkloadConfig(n_people=N_PEOPLE, seed=29))


@pytest.fixture(scope="module")
def expected_rows(store):
    return Evaluator(store).run(parse_query(FRAGMENT)).rows()


@pytest.mark.benchmark(group="planner-compare")
def test_textual_order(benchmark, store, expected_rows):
    query = parse_query(FRAGMENT)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == expected_rows


@pytest.mark.benchmark(group="planner-compare")
def test_greedy_order(benchmark, store, expected_rows):
    query = GreedyPlanner().reorder(parse_query(FRAGMENT))
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == expected_rows


@pytest.mark.benchmark(group="planner-compare")
def test_typed_plan(benchmark, store, expected_rows):
    query = parse_query(FRAGMENT)
    evaluator = TypedEvaluator(store)
    report = evaluator.plan(query)
    result = benchmark(lambda: evaluator.run(query, report))
    assert result.rows() == expected_rows


@pytest.mark.benchmark(group="planner-compare")
def test_greedy_with_index(benchmark, expected_rows):
    indexed_store = generate_database(
        WorkloadConfig(n_people=N_PEOPLE, seed=29)
    )
    indexed_store.enable_index("Manufacturer")
    indexed_store.enable_index("OwnedVehicles")
    query = GreedyPlanner().reorder(parse_query(FRAGMENT))
    evaluator = Evaluator(indexed_store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == expected_rows
