"""ABLATE: decomposing the Theorem 6.1 speedup.

The optimizer has two independent levers — evaluating path expressions in
the coherent plan's order, and restricting each variable's instantiations
to the extent of its range.  The ablation runs fragment (17) in the
unfavourable textual order under all four combinations.

Expected shape: plan reordering alone recovers most of the win here (it
removes the blind enumeration of M entirely); range restriction alone
also wins (blind enumeration still happens, but over extent(Company)
instead of every individual); together they compose.  Neither lever ever
changes the answers.
"""

import pytest

from repro.typing import TypedEvaluator
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

FRAGMENT = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)

VARIANTS = {
    "neither": dict(use_reorder=False, use_restrictions=False),
    "reorder-only": dict(use_reorder=True, use_restrictions=False),
    "restrict-only": dict(use_reorder=False, use_restrictions=True),
    "both": dict(use_reorder=True, use_restrictions=True),
}


@pytest.fixture(scope="module")
def store():
    return generate_database(WorkloadConfig(n_people=60, seed=17))


@pytest.fixture(scope="module")
def baseline_rows(store):
    return Evaluator(store).run(parse_query(FRAGMENT)).rows()


@pytest.mark.parametrize("variant", sorted(VARIANTS))
@pytest.mark.benchmark(group="thm61-ablation")
def test_ablation_variant(benchmark, store, baseline_rows, variant):
    evaluator = TypedEvaluator(store, **VARIANTS[variant])
    query = parse_query(FRAGMENT)
    report = evaluator.plan(query)
    assert report.strict
    result = benchmark(lambda: evaluator.run(query, report))
    assert result.rows() == baseline_rows


def test_ablation_shape(store, baseline_rows):
    """Each lever is sound alone; 'both' is the fastest variant."""
    import time

    timings = {}
    query = parse_query(FRAGMENT)
    for name, flags in VARIANTS.items():
        evaluator = TypedEvaluator(store, **flags)
        report = evaluator.plan(query)
        start = time.perf_counter()
        result = evaluator.run(query, report)
        timings[name] = time.perf_counter() - start
        assert result.rows() == baseline_rows, name
    assert timings["both"] <= timings["neither"]
    assert timings["reorder-only"] <= timings["neither"]
    assert timings["restrict-only"] <= timings["neither"]
