"""ENGT: the §1 engine-types contrast, measured.

"In the relational model, we simply project onto the attribute EngineType.
In the object-oriented model, we have to interrogate the schema rather
than the data (and there is hardly any language for doing that)."  XSQL
*is* that language; the bench times the three formulations:

* relational projection over the vehicles table (installed types);
* XSQL schema-only query (all catalogued types, footnote 1's second
  reading — impossible relationally without the auxiliary catalog table);
* XSQL data+schema query (installed types).

Expected shape: the relational projection is fastest (it scans one flat
table), the XSQL schema query is comparable (the class hierarchy is tiny
and data-independent), and the XSQL installed-types query costs the most
(it joins data with schema) — but it is the only formulation that needs
*no* precomputed EngineType column or catalog table.
"""

import pytest

from repro.relational import mirror_figure1, project
from repro.workloads.generator import WorkloadConfig, generate_database

ALL_TYPES = {
    "TurboEngine",
    "DieselEngine",
    "FourStrokeEngine",
    "TwoStrokeEngine",
}


@pytest.fixture(scope="module")
def synthetic_session():
    from repro.xsql.session import Session

    store = generate_database(WorkloadConfig(n_people=80, seed=3))
    return Session(store)


@pytest.fixture(scope="module")
def relational_mirror(synthetic_session):
    return mirror_figure1(synthetic_session.store)


@pytest.mark.benchmark(group="engt")
def test_relational_projection(benchmark, relational_mirror):
    vehicles = relational_mirror.table("vehicles")
    installed = benchmark(lambda: project(vehicles, ["engine_type"]))
    assert {row[0] for row in installed} <= ALL_TYPES


@pytest.mark.benchmark(group="engt")
def test_xsql_schema_query(benchmark, synthetic_session):
    result = benchmark(
        lambda: synthetic_session.query(
            "SELECT #X WHERE #X subclassOf PistonEngine"
        )
    )
    assert {str(v) for v in result.single_column()} == ALL_TYPES


@pytest.mark.benchmark(group="engt")
def test_xsql_installed_types(benchmark, synthetic_session):
    # Z is bound by walking from vehicles before #E is enumerated; the
    # `FROM #E Z` formulation (used on the small paper instance in the
    # test suite) makes the nested-loops evaluator enumerate every class
    # extent first — the clause-order sensitivity §6.2 plans address.
    result = benchmark(
        lambda: synthetic_session.query(
            "SELECT #E FROM Vehicle X WHERE X.Drivetrain.Engine[Z] "
            "and Z instanceOf #E and #E subclassOf PistonEngine"
        )
    )
    assert {str(v) for v in result.single_column()} <= ALL_TYPES


def test_footnote1_two_readings_agree_with_relational(
    synthetic_session, relational_mirror
):
    """Shape: the two readings coincide iff every type is installed."""
    installed_rel = {
        row[0]
        for row in project(
            relational_mirror.table("vehicles"), ["engine_type"]
        )
        if row[0] is not None
    }
    installed_oo = {
        str(v)
        for v in synthetic_session.query(
            "SELECT #E FROM Vehicle X WHERE X.Drivetrain.Engine[Z] "
            "and Z instanceOf #E and #E subclassOf PistonEngine"
        ).single_column()
    }
    catalogued = {
        str(v)
        for v in synthetic_session.query(
            "SELECT #X WHERE #X subclassOf PistonEngine"
        ).single_column()
    }
    assert installed_rel == installed_oo
    assert installed_oo <= catalogued
