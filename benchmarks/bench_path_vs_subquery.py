"""PVSQ: one path expression vs the nested/fragmented formulation.

§1 claim 4: "path expressions 'flatten' any nested structure in one sweep,
and therefore, there is no need to break a path of the schema into several
path expressions".  The bench evaluates the same 4-hop retrieval three
ways on growing synthetic databases:

* ``single-sweep`` — one extended path expression;
* ``fragmented``  — one conjunct per hop with explicit intermediate
  variables (what a language without multi-hop paths forces);
* ``subquery``    — the innermost hop pushed into a nested subquery.

Expected shape: all three return identical answers; the single sweep is
never slower than the fragmented form (it performs the same traversal
without materializing intermediate binding sets), and the subquery form
is the slowest (it re-evaluates the inner SELECT per outer binding).
"""

import pytest

from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

SINGLE = (
    "SELECT Z FROM Employee X "
    "WHERE X.OwnedVehicles.Drivetrain.Engine[Z]"
)
FRAGMENTED = (
    "SELECT Z FROM Employee X "
    "WHERE X.OwnedVehicles[V] and V.Drivetrain[D] and D.Engine[Z]"
)
SUBQUERY = (
    "SELECT Z FROM Employee X "
    "WHERE Z =some (SELECT E FROM VehicleDrivetrain D "
    "WHERE X.OwnedVehicles.Drivetrain[D].Engine[E])"
)

SIZES = [40, 120]


def _store(n_people):
    return generate_database(WorkloadConfig(n_people=n_people, seed=23))


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="pvsq-single-sweep")
def test_single_sweep(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(SINGLE)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert len(result) > 0


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="pvsq-fragmented")
def test_fragmented(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(FRAGMENTED)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == Evaluator(store).run(parse_query(SINGLE)).rows()


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="pvsq-subquery")
def test_subquery(benchmark, n_people):
    store = _store(n_people)
    query = parse_query(SUBQUERY)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert result.rows() == Evaluator(store).run(parse_query(SINGLE)).rows()


def test_equivalence_shape():
    """All three formulations agree; the sweep dominates the subquery."""
    import time

    store = _store(60)
    timings = {}
    answers = {}
    for name, text in (
        ("single", SINGLE),
        ("fragmented", FRAGMENTED),
        ("subquery", SUBQUERY),
    ):
        query = parse_query(text)
        evaluator = Evaluator(store)
        start = time.perf_counter()
        answers[name] = evaluator.run(query).rows()
        timings[name] = time.perf_counter() - start
    assert answers["single"] == answers["fragmented"] == answers["subquery"]
    assert timings["single"] <= timings["subquery"]
