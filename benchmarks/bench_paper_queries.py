"""Q1–Q17: every numbered example of the paper as a benchmark.

Each bench executes one worked example on the reconstructed instance
database, asserts the paper's answer, and measures evaluation time.  The
point is not the absolute numbers (the authors' prototype was never
released) but that the whole language surface runs, and which constructs
dominate cost.
"""

import pytest

from repro.errors import IllDefinedQueryError
from repro.oid import Atom, Value

from benchmarks.conftest import fresh_paper_session


def answer(result):
    return sorted(str(v) for v in result.single_column())


def run_query(benchmark, session, text):
    return benchmark(lambda: session.query(text))


@pytest.mark.benchmark(group="paper-queries")
def test_q1_path_expression(benchmark, paper):
    result = run_query(benchmark, paper, "SELECT mary123.Residence.City")
    assert result.scalars() == ["newyork"]


@pytest.mark.benchmark(group="paper-queries")
def test_q2_unnesting(benchmark, paper):
    result = run_query(
        benchmark, paper, "SELECT uniSQL.President.FamMembers.Name"
    )
    assert result.scalars() == ["Lee", "Sue"]


@pytest.mark.benchmark(group="paper-queries")
def test_q3_selectors(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    )
    assert answer(result) == ["addr_ny1", "addr_ny2"]


@pytest.mark.benchmark(group="paper-queries")
def test_q4_intermediate_selectors(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT Z FROM Employee X, Automobile Y "
        "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
    )
    assert answer(result) == ["eng_diesel", "eng_four", "eng_turbo"]


@pytest.mark.benchmark(group="paper-queries")
def test_q5_schema_browse(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    )
    assert answer(result) == ["Residence"]


@pytest.mark.benchmark(group="paper-queries")
def test_q6_subclassof(benchmark, paper):
    result = run_query(
        benchmark, paper, "SELECT #X WHERE TurboEngine subclassOf #X"
    )
    assert answer(result) == ["FourStrokeEngine", "Object", "PistonEngine"]


@pytest.mark.benchmark(group="paper-queries")
def test_q7_quantified_comparison(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
    )
    assert answer(result) == ["john13", "kim"]


@pytest.mark.benchmark(group="paper-queries")
def test_q8_set_comparator_join(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
        "and X.President.OwnedVehicles.Color containsEq {'blue', 'red'} "
        "and X.President.Age < 30",
    )
    assert answer(result) == ["uniSQL"]


@pytest.mark.benchmark(group="paper-queries")
def test_q9_all_quantifiers(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT Y, X FROM Employee Y, Employee X "
        "WHERE count(Y.FamMembers) > 0 and count(X.FamMembers) > 0 "
        "and Y.FamMembers.Age all<all X.FamMembers.Age",
    )
    assert [(str(a), str(b)) for a, b in result.rows()] == [
        ("ben", "john13")
    ]


@pytest.mark.benchmark(group="paper-queries")
def test_q10_aggregates(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
        "and X.Residence =all X.FamMembers.Residence "
        "and X.Salary < 35000",
    )
    assert answer(result) == ["ben"]


@pytest.mark.benchmark(group="paper-queries")
def test_q11_relation_result(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT X.Name, W.Salary FROM Company X "
        "WHERE X.Divisions.Employees[W]",
    )
    assert len(result) == 5


@pytest.mark.benchmark(group="paper-queries")
def test_q12_explicit_join(benchmark, paper):
    result = run_query(
        benchmark,
        paper,
        "SELECT X, Y FROM Company X "
        "WHERE X.Name =some X.Divisions.Employees[Y].Name",
    )
    assert [(str(a), str(b)) for a, b in result.rows()] == [
        ("acme", "acmeEmp")
    ]


@pytest.mark.benchmark(group="paper-creation")
def test_q13_object_creation(benchmark):
    def setup():
        return (fresh_paper_session(),), {}

    def run(session):
        return session.execute(
            "SELECT EmpSalary = W.Salary FROM Company X "
            "OID FUNCTION OF X, W WHERE X.Divisions.Employees[W]"
        )

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert len(result.created) == 6


@pytest.mark.benchmark(group="paper-creation")
def test_q14_grouping(benchmark):
    def setup():
        return (fresh_paper_session(),), {}

    def run(session):
        return session.execute(
            "SELECT CompName = Y.Name, Beneficiaries = {W} "
            "FROM Company Y OID FUNCTION OF Y "
            "WHERE Y.Retirees[W] or Y.Divisions.Employees.Dependents[W]"
        )

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert len(result.created) == 1


@pytest.mark.benchmark(group="paper-views")
def test_q15_view_create_and_query(benchmark):
    view = (
        "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
        "SIGNATURE CompName = String, DivName = String, Salary = Numeral "
        "SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary "
        "FROM Company X OID FUNCTION OF X, W "
        "WHERE X.Divisions[Y].Employees[W]"
    )
    through = (
        "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
        "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000"
    )

    def setup():
        return (fresh_paper_session(),), {}

    def run(session):
        session.execute(view)
        return session.query(through)

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert sorted(result.scalars()) == ["Acme", "UniSQL"]


@pytest.mark.benchmark(group="paper-methods")
def test_q16_query_defined_method(benchmark):
    mngr = (
        "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral "
        "SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X "
        "WHERE X.Divisions[Y].Manager.Salary[W]"
    )
    nested = (
        "SELECT X FROM Vehicle X WHERE 200000 <all "
        "(SELECT W FROM Division Y "
        "WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])"
    )

    def setup():
        session = fresh_paper_session()
        session.execute(mngr)
        return (session,), {}

    def run(session):
        return session.query(nested)

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert answer(result) == ["carWhite", "moto1"]


@pytest.mark.benchmark(group="paper-methods")
def test_q17_update_method(benchmark):
    mngr = (
        "ALTER CLASS Company ADD SIGNATURE MngrSalary : String => Numeral "
        "SELECT (MngrSalary @ Y.Name) = W FROM Company X OID X "
        "WHERE X.Divisions[Y].Manager.Salary[W]"
    )
    raise_method = (
        "ALTER CLASS Company "
        "ADD SIGNATURE RaiseMngrSalary : Numeral => Object "
        "SELECT (RaiseMngrSalary @ W) = nil FROM Company X, Numeral W "
        "OID X WHERE W < 20 and (UPDATE CLASS Company "
        "SET X.Divisions[Y].Manager.Salary = "
        "(1 + W/100) * X.(MngrSalary @ Y.Name))"
    )

    def setup():
        session = fresh_paper_session()
        session.execute(mngr)
        session.execute(raise_method)
        return (session,), {}

    def run(session):
        return session.store.invoke(
            Atom("uniSQL"), "RaiseMngrSalary", [Value(10)]
        )

    result = benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
    assert result  # nil returned: the raise succeeded


@pytest.mark.benchmark(group="paper-queries")
def test_q18_nobel(benchmark, nobel):
    result = run_query(benchmark, nobel, "SELECT X WHERE X.WonNobelPrize")
    assert answer(result) == ["einstein", "unicef"]


@pytest.mark.benchmark(group="paper-queries")
def test_q19_ill_defined_detection(benchmark):
    def setup():
        return (fresh_paper_session(),), {}

    def run(session):
        with pytest.raises(IllDefinedQueryError):
            session.execute(
                "SELECT CompName = X.Name, EmpSalary = W.Salary "
                "FROM Company X OID FUNCTION OF X "
                "WHERE X.Divisions.Employees[W]"
            )
        return True

    assert benchmark.pedantic(run, setup=setup, rounds=5, iterations=1)
