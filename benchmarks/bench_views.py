"""VIEWS: materialization, query-through-view, and maintenance (§4.2).

The CompSalaries view over synthetic databases of growing size, measured
the same way as :mod:`bench_pipeline`:

* **materialize** — how long ``CREATE VIEW`` takes end to end (one
  object per (company, employee) group);
* **through-view vs base** — a prepared re-run of the selective query
  *through* the materialized view against the equivalent base-data
  query (both ``plan="cost"``): the view is, in effect, an index over
  the join, which is the classical materialized-view trade the paper's
  uniform id-function treatment makes available;
* **maintenance** — after ``k`` point salary writes, the incremental
  sync (targeted per-group re-derivation) against a full ``REFRESH
  VIEW`` re-materialization;
* **update translation** — the §4.2 view-update path (view write →
  base write → refresh).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_views.py [--rounds N]
        [--json PATH]

or through pytest (asserts parity and that targeted maintenance beats
the full refresh)::

    PYTHONPATH=src python -m pytest benchmarks/bench_views.py
"""

from __future__ import annotations

import json
import statistics
import time
from typing import Callable, Dict, List, Tuple

from repro.oid import Value
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.session import Session

VIEW = (
    "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
    "SIGNATURE CompName = String, Salary = Numeral "
    "SELECT CompName = X.Name, Salary = W.Salary "
    "FROM Company X OID FUNCTION OF X, W "
    "WHERE X.Divisions[Y].Employees[W]"
)
THROUGH_VIEW = (
    "SELECT V.CompName FROM CompSalaries V WHERE V.Salary > 250000"
)
BASE_EQUIVALENT = (
    "SELECT X.Name FROM Company X "
    "WHERE X.Divisions[Y].Employees[W] and W.Salary > 250000"
)

SIZES = [40, 100]
MAINTENANCE_SIZE = 100
MAINTENANCE_WRITES = 3


def _fresh_session(n_people) -> Session:
    store = generate_database(WorkloadConfig(n_people=n_people, seed=5))
    return Session(store)


def _median_seconds(action: Callable[[], object], rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        action()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def measure_materialize(rounds: int = 3) -> List[Tuple[str, float, int]]:
    """Per-size (label, seconds, view objects) medians for CREATE VIEW."""
    results = []
    for n_people in SIZES:
        created = []

        def run() -> None:
            session = _fresh_session(n_people)
            created.append(len(session.query(VIEW).created))

        seconds = _median_seconds(run, rounds)
        results.append((f"{n_people}p", seconds, created[-1]))
    return results


def measure_through_view(
    rounds: int = 9,
) -> List[Tuple[str, float, float, int]]:
    """Per-size (label, base_seconds, view_seconds, rows) medians.

    Both sides re-run a *prepared* ``plan="cost"`` compilation, so
    compilation is off the clock: the base side re-derives the
    company⋈employee join on every run, the view side scans the
    materialized extent.
    """
    results = []
    for n_people in SIZES:
        session = _fresh_session(n_people)
        session.query(VIEW)
        through = session.prepare(THROUGH_VIEW, plan="cost")
        base = session.prepare(BASE_EQUIVALENT, plan="cost")
        view_rows = through.run().single_column()
        base_rows = base.run().single_column()
        assert view_rows == base_rows, f"{n_people}p: view disagrees"
        base_s = _median_seconds(base.run, rounds)
        view_s = _median_seconds(through.run, rounds)
        results.append((f"{n_people}p", base_s, view_s, len(view_rows)))
    return results


def measure_maintenance(
    rounds: int = 5, writes: int = MAINTENANCE_WRITES
) -> Tuple[float, float, int]:
    """(targeted_seconds, refresh_seconds, groups) after point writes.

    The targeted side makes ``writes`` point salary updates (cell
    writes on methods only SELECT items read) and times the lazy
    incremental sync — re-deriving just the affected groups.  The
    refresh side re-materializes the whole view after the same writes.
    """
    session = _fresh_session(MAINTENANCE_SIZE)
    session.query(VIEW)
    store = session.store
    view = session.views.get("CompSalaries")
    owners = [
        derivation.target
        for (oid, attr), derivation in sorted(
            view.outcome.derivations.items(), key=lambda kv: str(kv[0][0])
        )
        if attr == "Salary"
    ][:writes]
    assert owners, "no salary derivations to write through"
    groups = len(view.outcome.created)
    bump = [0]

    def write_points() -> None:
        bump[0] += 1
        for owner in owners:
            store.set_attr(owner, "Salary", Value(100_000 + bump[0]))

    def targeted() -> None:
        write_points()
        events = session.sync_views()
        assert events and events[0]["kind"] == "targeted", events

    def refresh() -> None:
        write_points()
        session.views.refresh("CompSalaries", session.evaluator())
        session.sync_views()  # clear the staleness the writes raised

    targeted_s = _median_seconds(targeted, rounds)
    refresh_s = _median_seconds(refresh, rounds)
    session.sync_views()
    return targeted_s, refresh_s, groups


def measure_update(rounds: int = 3) -> float:
    """Median seconds for one §4.2 view-update translation."""

    def run() -> None:
        session = _fresh_session(60)
        session.query(VIEW)
        view = session.views.get("CompSalaries")
        target = next(
            oid
            for (oid, attr) in sorted(
                view.outcome.derivations, key=lambda k: str(k[0])
            )
            if attr == "Salary"
        )
        count = session.update_view(
            "CompSalaries", "Salary", {target: Value(123456)}
        )
        assert count == 1

    return _median_seconds(run, rounds)


def report(
    materialize: List[Tuple[str, float, int]],
    through: List[Tuple[str, float, float, int]],
    maintenance: Tuple[float, float, int],
    update_s: float,
) -> str:
    lines = [
        "view materialization (CREATE VIEW, fresh store per round)",
        f"{'size':6s} {'seconds':>10s} {'objects':>8s}",
    ]
    for label, seconds, objects in materialize:
        lines.append(f"{label:6s} {seconds * 1000:8.3f}ms {objects:8d}")
    lines.append("")
    lines.append(
        "query through view vs base equivalent (prepared plan=cost)"
    )
    lines.append(
        f"{'size':6s} {'base':>10s} {'view':>10s} {'speedup':>8s} "
        f"{'rows':>5s}"
    )
    for label, base_s, view_s, rows in through:
        ratio = base_s / view_s if view_s else float("inf")
        lines.append(
            f"{label:6s} {base_s * 1000:8.3f}ms {view_s * 1000:8.3f}ms "
            f"{ratio:7.2f}x {rows:5d}"
        )
    targeted_s, refresh_s, groups = maintenance
    ratio = refresh_s / targeted_s if targeted_s else float("inf")
    lines.append("")
    lines.append(
        f"maintenance after {MAINTENANCE_WRITES} point writes "
        f"({groups} groups): targeted {targeted_s * 1000:.3f}ms vs "
        f"refresh {refresh_s * 1000:.3f}ms ({ratio:.2f}x)"
    )
    lines.append(
        f"view-update translation (§4.2, includes refresh): "
        f"{update_s * 1000:.3f}ms"
    )
    return "\n".join(lines)


def as_json(
    materialize: List[Tuple[str, float, int]],
    through: List[Tuple[str, float, float, int]],
    maintenance: Tuple[float, float, int],
    update_s: float,
) -> Dict[str, object]:
    """The JSON artifact (``--json``), shaped like BENCH_pipeline.json."""
    targeted_s, refresh_s, groups = maintenance
    return {
        "materialize": [
            {
                "size": label,
                "seconds_ms": round(seconds * 1000, 4),
                "objects": objects,
            }
            for label, seconds, objects in materialize
        ],
        "through_view": [
            {
                "size": label,
                "base_ms": round(base_s * 1000, 4),
                "view_ms": round(view_s * 1000, 4),
                "speedup": round(base_s / view_s, 2) if view_s else None,
                "rows": rows,
            }
            for label, base_s, view_s, rows in through
        ],
        "maintenance": {
            "writes": MAINTENANCE_WRITES,
            "groups": groups,
            "targeted_ms": round(targeted_s * 1000, 4),
            "refresh_ms": round(refresh_s * 1000, 4),
            "speedup": (
                round(refresh_s / targeted_s, 2) if targeted_s else None
            ),
        },
        "update_translation_ms": round(update_s * 1000, 4),
    }


def test_through_view_matches_base():
    # Parity is asserted inside measure_through_view for every size;
    # the speedup itself is workload-dependent (the view extent is
    # small here), so the timing criterion lives in bench_pipeline V3.
    results = measure_through_view(rounds=3)
    assert all(rows >= 0 for *_rest, rows in results)


def test_targeted_maintenance_beats_full_refresh():
    targeted_s, refresh_s, _groups = measure_maintenance(rounds=3)
    assert targeted_s < refresh_s, (
        f"targeted {targeted_s * 1000:.3f}ms vs "
        f"refresh {refresh_s * 1000:.3f}ms"
    )


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=9)
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the results as a JSON artifact",
    )
    args = parser.parse_args()
    materialize = measure_materialize(rounds=min(args.rounds, 3))
    through = measure_through_view(rounds=args.rounds)
    maintenance = measure_maintenance(rounds=min(args.rounds, 5))
    update_s = measure_update(rounds=min(args.rounds, 3))
    print(report(materialize, through, maintenance, update_s))
    if args.json:
        payload = as_json(materialize, through, maintenance, update_s)
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
