"""VIEWS: materialization and query-through-view scaling (§4.2).

The CompSalaries view over synthetic databases of growing size: how long
materialization takes (one object per (company, employee) pair), how a
query through the view's id-term compares with the equivalent base query,
and the cost of the §4.2 view-update translation.

Expected shape: materialization scales with the number of view objects;
querying *through* the materialized view beats re-deriving the same
information from base data (the view is, in effect, an index), which is
the classical materialized-view trade the paper's uniform id-function
treatment makes available.
"""

import pytest

from repro.oid import Value
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.session import Session

VIEW = (
    "CREATE VIEW CompSalaries AS SUBCLASS OF Object "
    "SIGNATURE CompName = String, Salary = Numeral "
    "SELECT CompName = X.Name, Salary = W.Salary "
    "FROM Company X OID FUNCTION OF X, W "
    "WHERE X.Divisions[Y].Employees[W]"
)
THROUGH_VIEW = (
    "SELECT V.CompName FROM CompSalaries V WHERE V.Salary > 250000"
)
BASE_EQUIVALENT = (
    "SELECT X.Name FROM Company X "
    "WHERE X.Divisions[Y].Employees[W] and W.Salary > 250000"
)

SIZES = [40, 100]


def _fresh_session(n_people) -> Session:
    store = generate_database(WorkloadConfig(n_people=n_people, seed=5))
    return Session(store)


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="views-materialize")
def test_view_materialization(benchmark, n_people):
    def setup():
        return (_fresh_session(n_people),), {}

    def run(session):
        return session.execute(VIEW)

    result = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert len(result.created) > 0


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="views-query-through")
def test_query_through_view(benchmark, n_people):
    session = _fresh_session(n_people)
    session.execute(VIEW)
    result = benchmark(lambda: session.query(THROUGH_VIEW))
    base = session.query(BASE_EQUIVALENT)
    assert result.single_column() == base.single_column()


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="views-base-equivalent")
def test_base_equivalent_query(benchmark, n_people):
    session = _fresh_session(n_people)
    result = benchmark(lambda: session.query(BASE_EQUIVALENT))
    assert result is not None


@pytest.mark.benchmark(group="views-update")
def test_view_update_translation(benchmark):
    def setup():
        session = _fresh_session(60)
        session.execute(VIEW)
        view = session.views.get("CompSalaries")
        target = next(
            oid
            for (oid, attr) in view.outcome.derivations
            if attr == "Salary"
        )
        return (session, target), {}

    def run(session, target):
        return session.update_view(
            "CompSalaries", "Salary", {target: Value(123456)}
        )

    count = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert count == 1
