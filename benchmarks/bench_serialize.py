"""SERIALIZE: save/load throughput across database sizes.

Persistence is outside the paper's scope but inside any adoptable
library's; the bench pins the dump/restore cost curve and asserts the
round-trip changes nothing (a loaded database answers a reference query
identically).
"""

import json

import pytest

from repro.datamodel.serialize import store_from_dict, store_to_dict
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

SIZES = [50, 200]
REFERENCE = "SELECT X FROM Employee X WHERE X.Salary > 200000"


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="serialize-dump")
def test_dump(benchmark, n_people):
    store = generate_database(WorkloadConfig(n_people=n_people, seed=8))
    payload, report = benchmark(lambda: store_to_dict(store))
    assert report.objects > n_people

@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="serialize-load")
def test_load(benchmark, n_people):
    store = generate_database(WorkloadConfig(n_people=n_people, seed=8))
    payload, _report = store_to_dict(store)
    encoded = json.dumps(payload)
    loaded = benchmark(lambda: store_from_dict(json.loads(encoded)))
    query = parse_query(REFERENCE)
    assert (
        Evaluator(loaded).run(query).rows()
        == Evaluator(store).run(query).rows()
    )


@pytest.mark.benchmark(group="serialize-json")
def test_json_encoding(benchmark):
    store = generate_database(WorkloadConfig(n_people=200, seed=8))
    payload, _report = store_to_dict(store)
    text = benchmark(lambda: json.dumps(payload))
    assert len(text) > 10_000
