"""INDEX: inverted attribute indexes for reverse path lookups.

The paper's companion reference [BERT89] studies index support for
queries on nested objects; this bench measures the simplest such index on
the reverse-lookup pattern ``X.Residence[addr]`` (unknown host, known
value) across database sizes.

Expected shape: the scan cost grows linearly with the number of people
while the indexed lookup stays flat; forward traversals (bound head) are
unaffected; answers never change.
"""

import pytest

from repro.oid import Atom
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

SIZES = [100, 300]


def _setup(n_people, indexed):
    store = generate_database(WorkloadConfig(n_people=n_people, seed=3))
    if indexed:
        store.enable_index("Residence")
    address = sorted(store.extent("Address"), key=str)[0]
    query = parse_query(f"SELECT X WHERE X.Residence[{address}]")
    return store, query


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="index-reverse-scan")
def test_reverse_lookup_scan(benchmark, n_people):
    store, query = _setup(n_people, indexed=False)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    assert len(result) > 0


@pytest.mark.parametrize("n_people", SIZES)
@pytest.mark.benchmark(group="index-reverse-indexed")
def test_reverse_lookup_indexed(benchmark, n_people):
    store, query = _setup(n_people, indexed=True)
    evaluator = Evaluator(store)
    result = benchmark(lambda: evaluator.run(query))
    scan_store, scan_query = _setup(n_people, indexed=False)
    assert result.rows() == Evaluator(scan_store).run(scan_query).rows()


@pytest.mark.benchmark(group="index-maintenance")
def test_write_overhead_with_index(benchmark):
    """Per-write cost of incremental maintenance."""
    store = generate_database(WorkloadConfig(n_people=50, seed=3))
    store.enable_index("Residence")
    people = sorted(store.extent("Person"), key=str)
    addresses = sorted(store.extent("Address"), key=str)

    def churn():
        for index, person in enumerate(people):
            store.set_attr(
                person, "Residence", addresses[index % len(addresses)]
            )
        return True

    assert benchmark(churn)


def test_index_speedup_shape():
    """The scan/index ratio grows with database size."""
    import time

    ratios = []
    for n_people in SIZES:
        store, query = _setup(n_people, indexed=False)
        start = time.perf_counter()
        scan_result = Evaluator(store).run(query)
        scan_s = time.perf_counter() - start
        store.enable_index("Residence")
        start = time.perf_counter()
        indexed_result = Evaluator(store).run(query)
        indexed_s = time.perf_counter() - start
        assert indexed_result.rows() == scan_result.rows()
        ratios.append(scan_s / max(indexed_s, 1e-9))
    assert all(r > 1 for r in ratios), ratios
