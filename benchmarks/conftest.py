"""Shared fixtures for the benchmark harness.

Read-only fixtures are session-scoped so every bench sees identical data;
benches that mutate state build fresh sessions inside their setup hooks.
"""

import pytest

from repro import Session


def pytest_addoption(parser):
    try:
        parser.addoption(
            "--runslow",
            action="store_true",
            default=False,
            help="also run benchmarks marked @pytest.mark.slow "
            "(the 10^5/10^6 scale tiers)",
        )
    except ValueError:
        pass  # tests/conftest.py already registered it (pytest tests benchmarks)


def pytest_collection_modifyitems(config, items):
    if config.getoption("--runslow"):
        return
    skip_slow = pytest.mark.skip(reason="slow bench: pass --runslow to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)
from repro.schema.figure1 import build_figure1_schema
from repro.schema.nobel import build_nobel_schema, populate_nobel_database
from repro.schema.typing_examples import (
    extend_with_typing_classes,
    populate_oo_forum,
)
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.workloads.paper_db import populate_paper_database


def fresh_paper_session() -> Session:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    return session


@pytest.fixture(scope="session")
def paper() -> Session:
    """Read-only paper-instance session."""
    return fresh_paper_session()


@pytest.fixture(scope="session")
def typing_paper() -> Session:
    session = fresh_paper_session()
    extend_with_typing_classes(session.store)
    populate_oo_forum(session.store)
    return session


@pytest.fixture(scope="session")
def nobel() -> Session:
    session = Session()
    build_nobel_schema(session.store)
    populate_nobel_database(session.store)
    return session


@pytest.fixture(scope="session")
def synthetic_small():
    return generate_database(WorkloadConfig(n_people=50, seed=7))


@pytest.fixture(scope="session")
def synthetic_medium():
    return generate_database(WorkloadConfig(n_people=150, seed=7))
