"""Schema exploration: querying the schema in the same language as data.

The paper's headline novelty (§1, feature 1): "it is possible to query
data without a complete knowledge of the schema", because class names,
attribute names, and method names are all logical object ids that
variables can range over.  This example runs:

* the engine-types contrast of §1 (relational projection vs schema query,
  including footnote 1's installed-vs-catalogued distinction);
* attribute discovery with method variables (query (3));
* the class-variable query (4), whose answer the paper states exactly;
* the Nobel-prize query, plus its typing analysis across the §6 spectrum.
"""

from repro import Session
from repro.relational import mirror_figure1, project
from repro.schema.figure1 import build_figure1_schema
from repro.schema.nobel import build_nobel_schema, populate_nobel_database
from repro.typing import Exemptions, analyze
from repro.workloads.paper_db import populate_paper_database


def engine_types_contrast(session: Session) -> None:
    print("=== Engine types: schema query vs relational projection (§1)")
    relational = mirror_figure1(session.store)
    installed = project(relational.table("vehicles"), ["engine_type"])
    print(
        "relational π(EngineType):",
        sorted(str(r[0]) for r in installed),
    )
    all_types = session.query("SELECT #X WHERE #X subclassOf PistonEngine")
    print(
        "XSQL schema query:      ",
        sorted(str(x) for x in all_types.single_column()),
    )
    installed_oo = session.query(
        "SELECT #E FROM Vehicle X, #E Z "
        "WHERE X.Drivetrain.Engine[Z] and #E subclassOf PistonEngine"
    )
    print(
        "XSQL installed-only:    ",
        sorted(str(x) for x in installed_oo.single_column()),
    )


def attribute_discovery(session: Session) -> None:
    print("\n=== Which attribute connects a Person to 'newyork'? (query 3)")
    result = session.query(
        "SELECT Y FROM Person X WHERE X.Y.City['newyork']"
    )
    print("answer:", sorted(str(x) for x in result.single_column()))

    print("\n=== Strict superclasses of TurboEngine (query 4)")
    result = session.query("SELECT #X WHERE TurboEngine subclassOf #X")
    print("answer:", sorted(str(x) for x in result.single_column()))


def nobel_prizes() -> None:
    print("\n=== The Nobel-prize query and the typing spectrum (§1, §6)")
    session = Session()
    build_nobel_schema(session.store)
    populate_nobel_database(session.store)
    query = "SELECT X WHERE X.WonNobelPrize"
    result = session.query(query)
    print("winners:", sorted(str(x) for x in result.single_column()))
    report = analyze(query, session.store)
    print("default typing discipline:", report.discipline())
    exempted = analyze(
        query, session.store, Exemptions.for_method("WonNobelPrize", 0)
    )
    print("with the 0-th argument exempted:", exempted.discipline())


def main() -> None:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)
    engine_types_contrast(session)
    attribute_discovery(session)
    nobel_prizes()


if __name__ == "__main__":
    main()
