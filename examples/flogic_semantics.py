"""Theorem 3.1 made visible: XSQL queries as F-logic formulas.

The paper grounds XSQL's semantics in F-logic [KLW90] and promises an
effective translation (Theorem 3.1).  This example prints the translation
``P(q)`` for several paper queries, evaluates both the F-logic formula and
the native engine, and shows they agree — including a schema-browsing
query whose method variable stays first-order.
"""

from repro.flogic import FlogicDatabase, evaluate, translate
from repro.workloads.paper_db import paper_session
from repro.xsql.parser import parse_query

QUERIES = [
    (
        "Path expression (1)",
        "SELECT mary123.Residence.City",
    ),
    (
        "Selectors bind intermediate objects",
        "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
    ),
    (
        "A some-quantified comparison",
        "SELECT X FROM Employee X WHERE X.Salary < 35000",
    ),
    (
        "Schema browsing with a method variable (query 3)",
        "SELECT Y FROM Person X WHERE X.Y.City['newyork']",
    ),
    (
        "Class hierarchy interrogation (query 4)",
        "SELECT #X WHERE TurboEngine subclassOf #X",
    ),
]


def main() -> None:
    session = paper_session()
    db = FlogicDatabase.from_store(session.store)
    print(f"F-logic export: {db.fact_count()} ground data molecules\n")

    for title, text in QUERIES:
        query = parse_query(text)
        translated = translate(query)
        print(f"=== {title}")
        print(f"XSQL:    {text}")
        print(f"F-logic: {translated}")
        flogic_answers = evaluate(db, translated)
        native_answers = session.query(text).rows()
        agree = "AGREE" if flogic_answers == native_answers else "DIFFER"
        rendered = sorted(
            ", ".join(str(v) for v in row) for row in flogic_answers
        )
        print(f"answers ({agree}): {rendered}\n")


if __name__ == "__main__":
    main()
