"""Path variables over a genealogy: reachability without recursion.

§3.1's path-variable extension ("xY can be bound to any sequence of
attributes") gives bounded transitive reachability directly in a query —
this example builds a four-generation family tree and asks:

* who is reachable from the matriarch, and via which attribute sequence;
* which descendants are reachable through mothers only;
* the schema-browsing twist: which attribute sequences connect two
  concrete people.
"""

from repro import Session
from repro.oid import Atom

FAMILY = {
    # person: (mother, father)
    "eve": (None, None),
    "adam": (None, None),
    "cain": ("eve", "adam"),
    "awan": (None, None),
    "enoch": ("awan", "cain"),
    "irad": (None, "enoch"),
    "mehujael": (None, "irad"),
}


def build() -> Session:
    session = Session()
    store = session.store
    store.declare_class("Person2")
    store.declare_signature("Person2", "Mother", "Person2")
    store.declare_signature("Person2", "Father", "Person2")
    store.declare_signature("Person2", "Label", "String")
    for name in FAMILY:
        person = store.create_object(Atom(name), ["Person2"])
        store.set_attr(person, "Label", name)
    for name, (mother, father) in FAMILY.items():
        if mother:
            store.set_attr(Atom(name), "Mother", Atom(mother))
        if father:
            store.set_attr(Atom(name), "Father", Atom(father))
    return session


def main() -> None:
    session = build()

    print("=== ancestors of mehujael (any parent chain, any length)")
    result = session.query("SELECT Y WHERE mehujael.*P[Y] and Y.Label")
    print(sorted(str(v) for v in result.single_column()))

    print("\n=== which attribute sequences lead from mehujael to cain?")
    result = session.query("SELECT P WHERE mehujael.*P[cain]")
    for value in sorted(str(v) for v in result.single_column()):
        print(" ", value)

    print("\n=== people whose mother-line reaches eve")
    result = session.query(
        "SELECT X FROM Person2 X WHERE X.Mother.*P[eve]"
    )
    print(sorted(str(v) for v in result.single_column()))


if __name__ == "__main__":
    main()
