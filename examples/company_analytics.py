"""Company analytics: views, object-creating queries, and methods (§4–§5).

A payroll scenario over the Figure 1 database:

1. create the ``CompSalaries`` view of query (9) — salary facts without
   employee identities, "obviously, it could be used as a security
   measure";
2. query through the view exactly as in query (10);
3. define the ``MngrSalary`` method (query (12)) and use it in the nested
   query (13);
4. define the ``RaiseMngrSalary`` update method and give every uniSQL
   division manager a 10% raise;
5. translate a view update into a base-database update (§4.2).
"""

from repro import Atom, FuncOid, Value
from repro.workloads.paper_db import paper_session


def main() -> None:
    session = paper_session()
    store = session.store

    print("=== 1. CREATE VIEW CompSalaries (query 9)")
    session.execute(
        """
        CREATE VIEW CompSalaries AS SUBCLASS OF Object
        SIGNATURE CompName = String, DivName = String, Salary = Numeral
        SELECT CompName = X.Name, DivName = Y.Name, Salary = W.Salary
        FROM Company X
        OID FUNCTION OF X, W
        WHERE X.Divisions[Y].Employees[W]
        """
    )
    rows = session.query(
        "SELECT V.CompName, V.DivName, V.Salary FROM CompSalaries V"
    )
    print(rows.pretty())

    print("\n=== 2. Query through the view (query 10)")
    result = session.query(
        "SELECT X.Manufacturer.Name FROM Automobile X, Employee W "
        "WHERE CompSalaries(X.Manufacturer, W).Salary > 35000"
    )
    print("automobile companies with a >$35k employee:", result.scalars())

    print("\n=== 3. Define and use MngrSalary (queries 12-13)")
    session.execute(
        """
        ALTER CLASS Company
        ADD SIGNATURE MngrSalary : String => Numeral
        SELECT (MngrSalary @ Y.Name) = W
        FROM Company X
        OID X
        WHERE X.Divisions[Y].Manager.Salary[W]
        """
    )
    result = session.query(
        """
        SELECT X
        FROM Vehicle X
        WHERE 200000 <all (SELECT W
                           FROM Division Y
                           WHERE X.Manufacturer.(MngrSalary @ Y.Name)[W])
        """
    )
    print(
        "vehicles from companies paying every manager > $200k:",
        sorted(str(x) for x in result.single_column()),
    )

    print("\n=== 4. RaiseMngrSalary: an update method (§5)")
    session.execute(
        """
        ALTER CLASS Company
        ADD SIGNATURE RaiseMngrSalary : Numeral => Object
        SELECT (RaiseMngrSalary @ W) = nil
        FROM Company X, Numeral W
        OID X
        WHERE W < 20
        and (UPDATE CLASS Company
             SET X.Divisions[Y].Manager.Salary =
                 (1 + W/100) * X.(MngrSalary @ Y.Name))
        """
    )
    before = {
        name: store.invoke_scalar(Atom(name), "Salary")
        for name in ("john13", "rich")
    }
    store.invoke(Atom("uniSQL"), "RaiseMngrSalary", [Value(10)])
    after = {
        name: store.invoke_scalar(Atom(name), "Salary")
        for name in ("john13", "rich")
    }
    for name in before:
        print(f"  {name}: {before[name]} -> {after[name]}")
    rejected = store.invoke(Atom("uniSQL"), "RaiseMngrSalary", [Value(25)])
    print("  a 25% raise is guarded against:", set(rejected) == set())

    print("\n=== 5. Updating through the view (§4.2)")
    target = FuncOid("CompSalaries", (Atom("uniSQL"), Atom("ben")))
    session.refresh_view("CompSalaries")
    session.update_view("CompSalaries", "Salary", {target: Value(42000)})
    print(
        "  ben's base salary after the view update:",
        store.invoke_scalar(Atom("ben"), "Salary"),
    )


if __name__ == "__main__":
    main()
