"""Theorem 6.1 in action: typed, range-restricted evaluation.

Type-checks the §6.2 fragment (17) on a synthetic database, shows the
coherent (assignment, plan) pair the analysis finds, and times the typed
evaluator against the untyped one as the database grows.  The typed
evaluator "considers only those instantiations o of X such that o ∈ A(X)"
— the measured speedup is the paper's "potentially very powerful
optimization" made concrete.
"""

import time

from repro.typing import TypedEvaluator, analyze
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query

# Fragment (17) with its conjuncts in the unfavourable textual order: a
# naive left-to-right nested-loops evaluation hits M unbound and must try
# every individual in the database as a candidate manufacturer.  The
# typed evaluator finds the coherent plan (Manufacturer first), reorders,
# and restricts M to A(M) = {Object, Company} — i.e. to Company's extent.
QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)


def main() -> None:
    print(f"query: {QUERY}\n")
    for n_people in (50, 150, 400):
        store = generate_database(WorkloadConfig(n_people=n_people))
        report = analyze(QUERY, store)
        assert report.strict, "fragment (17) must be strictly well-typed"
        assignment, plan = report.strict_witness

        parsed = parse_query(QUERY)

        start = time.perf_counter()
        plain = Evaluator(store).run(parsed)
        plain_ms = (time.perf_counter() - start) * 1000

        typed_eval = TypedEvaluator(store)
        start = time.perf_counter()
        typed = typed_eval.run(parsed, report)
        typed_ms = (time.perf_counter() - start) * 1000

        assert typed.rows() == plain.rows()
        speedup = plain_ms / typed_ms if typed_ms else float("inf")
        print(
            f"n_people={n_people:4d}  plan={plan}  "
            f"untyped={plain_ms:8.2f} ms  typed={typed_ms:8.2f} ms  "
            f"speedup={speedup:5.2f}x  answers={len(typed)}"
        )

    print("\nwitnessing assignment for the last run:")
    for occ, expr in assignment.entries:
        print(f"  {occ} : {expr}")


if __name__ == "__main__":
    main()
