"""Quickstart: build the Figure 1 database and run the paper's queries.

Run with::

    python examples/quickstart.py

Walks the opening examples of §3: plain path expressions, selectors,
unnesting through set-valued attributes, quantified comparisons, and
aggregates — each one printed with its XSQL text and its answer.
"""

from repro import Session
from repro.schema.figure1 import build_figure1_schema
from repro.workloads.paper_db import populate_paper_database


def main() -> None:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)

    examples = [
        (
            "Path expression (1): where does mary123 live?",
            "SELECT mary123.Residence.City",
        ),
        (
            "Unnesting in one sweep: names of the president's family",
            "SELECT uniSQL.President.FamMembers.Name",
        ),
        (
            "Selectors bind intermediate objects: New York residences",
            "SELECT Y FROM Person X WHERE X.Residence[Y].City['newyork']",
        ),
        (
            "Engines installed in employee-owned automobiles",
            "SELECT Z FROM Employee X, Automobile Y "
            "WHERE X.OwnedVehicles[Y].Drivetrain.Engine[Z]",
        ),
        (
            "Quantified comparison: a family member over 20",
            "SELECT X FROM Employee X WHERE X.FamMembers.Age some> 20",
        ),
        (
            "Set comparator + explicit join: young presidents with "
            "blue and red vehicles",
            "SELECT X FROM Automobile Y WHERE Y.Manufacturer[X] "
            "and X.President.OwnedVehicles.Color containsEq "
            "{'blue', 'red'} and X.President.Age < 30",
        ),
        (
            "Aggregates: big, single-household, modest-salary families",
            "SELECT X FROM Employee X WHERE count(X.FamMembers) > 4 "
            "and X.Residence =all X.FamMembers.Residence "
            "and X.Salary < 35000",
        ),
        (
            "A relation-valued result: company names with salaries",
            "SELECT X.Name, W.Salary FROM Company X "
            "WHERE X.Divisions.Employees[W]",
        ),
    ]

    for title, text in examples:
        print(f"\n=== {title}")
        print(f"    {text}")
        result = session.query(text)
        print(result.pretty())


if __name__ == "__main__":
    main()
