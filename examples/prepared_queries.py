"""The staged pipeline tour: prepare, re-run, explain, and stats.

Every statement runs through ``parse -> normalize -> analyze -> plan ->
execute``; the schema-dependent prefix is cached per session.  This
example shows the three faces of that pipeline:

1. ``session.prepare`` — compile once, re-run a ``CompiledQuery`` many
   times while only paying the execute stage;
2. cache invalidation — DDL bumps the schema generation and transparently
   recompiles, while plain data updates never do;
3. ``session.stats`` — the per-stage timers and cache counters.
"""

import time

from repro.schema.figure1 import build_figure1_schema
from repro.workloads.paper_db import populate_paper_database
from repro.xsql.session import Session

QUERY = (
    "SELECT X FROM Vehicle X "
    "WHERE X.Manufacturer[M] and M.President.OwnedVehicles[X]"
)


def main() -> None:
    session = Session()
    build_figure1_schema(session.store)
    populate_paper_database(session.store)

    print("=== 1. prepare once, run many times")
    compiled = session.prepare(QUERY, plan="typed")
    print(compiled.explain())

    start = time.perf_counter()
    rows = compiled.run().rows()
    first_ms = 1000 * (time.perf_counter() - start)
    start = time.perf_counter()
    for _ in range(50):
        assert compiled.run().rows() == rows
    rerun_ms = 1000 * (time.perf_counter() - start) / 50
    print(
        f"  first run {first_ms:.3f} ms, "
        f"mean of 50 prepared re-runs {rerun_ms:.3f} ms "
        f"({len(rows)} row(s) each time)"
    )

    print("\n=== 2. invalidation: DDL recompiles, data updates do not")
    session.query(QUERY, plan="typed")
    hits_before = session.stats()["counters"].get("cache.hit", 0)
    session.query(QUERY, plan="typed")
    hits_after = session.stats()["counters"].get("cache.hit", 0)
    print(f"  repeated query() hit the statement cache: "
          f"{hits_after - hits_before} new hit(s)")

    session.execute("CREATE CLASS Hovercraft AS SUBCLASS OF Vehicle")
    print(f"  after CREATE CLASS the prepared query is stale: "
          f"{compiled.is_stale}")
    assert compiled.run().rows() == rows  # rebuilt transparently
    print("  ... and run() recompiled it against the new schema")

    session.execute("UPDATE CLASS Employee SET ben.Salary = 60000")
    print(f"  after a data UPDATE it stays fresh: stale={compiled.is_stale}")

    print("\n=== 3. session.stats()")
    print(session.metrics.summary())


if __name__ == "__main__":
    main()
