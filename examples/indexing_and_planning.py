"""Evaluation machinery tour: explain, planners, and indexes.

Shows the three levers the library offers over the naive nested-loops
evaluation the paper describes (§6.2's execution plans being the typed
one):

1. ``session.explain`` — where a query sits on the typing spectrum, the
   coherent plan, and the instantiation sets Theorem 6.1 licenses;
2. the greedy (untyped) boundness planner vs the typed plan;
3. [BERT89]-style inverted attribute indexes for reverse lookups.
"""

import time

from repro.typing import TypedEvaluator
from repro.workloads.generator import WorkloadConfig, generate_database
from repro.xsql.evaluator import Evaluator
from repro.xsql.parser import parse_query
from repro.xsql.planner import GreedyPlanner
from repro.xsql.session import Session

FRAGMENT = (
    "SELECT X FROM Vehicle X "
    "WHERE M.President.OwnedVehicles[X] and X.Manufacturer[M]"
)


def timed(label: str, fn):
    start = time.perf_counter()
    result = fn()
    print(f"  {label:<22} {1000 * (time.perf_counter() - start):8.2f} ms")
    return result


def main() -> None:
    store = generate_database(WorkloadConfig(n_people=120, seed=29))
    session = Session(store)

    print("=== 1. explain")
    print(session.explain(FRAGMENT))

    print("\n=== 2. evaluation strategies on the same query")
    query = parse_query(FRAGMENT)
    baseline = timed("textual order", lambda: Evaluator(store).run(query))
    greedy_query = GreedyPlanner().reorder(query)
    greedy = timed(
        "greedy planner", lambda: Evaluator(store).run(greedy_query)
    )
    typed_eval = TypedEvaluator(store)
    report = typed_eval.plan(query)
    typed = timed(
        "typed plan (Thm 6.1)", lambda: typed_eval.run(query, report)
    )
    assert greedy.rows() == baseline.rows() == typed.rows()
    print(f"  answers agree across all strategies ({len(typed)} rows)")

    print("\n=== 3. inverted indexes for reverse lookups")
    address = sorted(store.extent("Address"), key=str)[0]
    reverse = parse_query(f"SELECT X WHERE X.Residence[{address}]")
    scan = timed("scan", lambda: Evaluator(store).run(reverse))
    store.enable_index("Residence")
    indexed = timed("indexed", lambda: Evaluator(store).run(reverse))
    assert indexed.rows() == scan.rows()
    print(
        f"  index answered {store.index_stats()['hits']} lookup(s); "
        f"answers agree ({len(indexed)} rows)"
    )


if __name__ == "__main__":
    main()
